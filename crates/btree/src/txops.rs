//! Transactional tree operations over the word-based STM.
//!
//! Shared by the STM GB-tree baseline (which wraps *every* request in one
//! transaction) and by Eirene's update kernel (which uses them only for
//! the leaf region, plus the full descent as its fallback path once the
//! optimistic retry threshold is exceeded — Alg. 1 lines 27-46).

use crate::build::TreeHandle;
use crate::node::{
    meta_count, meta_is_leaf, pack_meta, FANOUT, META_DEAD, MIN_OCCUPANCY, NODE_WORDS, OFF_HIGH,
    OFF_KEYS, OFF_LOW, OFF_META, OFF_NEXT, OFF_RF, OFF_VALS, OFF_VERSION,
};
use eirene_sim::{Addr, Phase, TraceEventKind, WarpCtx};
use eirene_stm::{Tx, TxResult};

/// Sentinel for "no previous value".
pub const NO_VALUE: u64 = u64::MAX;

/// Where a split publishes its new fence.
pub enum SplitParent {
    /// Insert the fence into this (non-full) parent: `(address, child
    /// slot, count)`.
    Node(Addr, usize, usize),
    /// The split node is the root: build a new root.
    Root,
}

/// Transactional binary search for the descent slot in an inner node:
/// probes `O(log FANOUT)` keys, each a transactional read.
pub fn tx_child_slot(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    addr: Addr,
    count: usize,
    key: u64,
) -> TxResult<usize> {
    let mut lo = 0usize; // invariant: keys[lo] <= key or lo == 0
    let mut hi = count; // invariant: keys[hi] > key (virtual +inf)
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        let k = tx.read(ctx, addr + OFF_KEYS + mid as u64)?;
        ctx.control(2);
        if k <= key {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

/// Transactional search for an exact key in a leaf.
pub fn tx_find(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    addr: Addr,
    count: usize,
    key: u64,
) -> TxResult<Option<usize>> {
    if count == 0 {
        return Ok(None);
    }
    let slot = tx_child_slot(tx, ctx, addr, count, key)?;
    let k = tx.read(ctx, addr + OFF_KEYS + slot as u64)?;
    ctx.control(1);
    Ok((k == key).then_some(slot))
}

/// Splits a full node inside the transaction, returning the sibling's
/// address and fence key. All writes are transactional, so an abort rolls
/// the whole split back; the freshly allocated sibling (and the new root,
/// for a root split) is registered with [`Tx::retire_on_abort`], so a
/// rollback retires the never-published node through the slab arena
/// instead of leaking it.
pub fn tx_split(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    handle: &TreeHandle,
    parent: SplitParent,
    addr: Addr,
    leaf: bool,
) -> TxResult<(Addr, u64)> {
    // The phase wrapper restores attribution even when a transactional
    // access aborts out of the split with `?`.
    let prev = ctx.set_phase(Phase::StructureMod);
    let r = tx_split_inner(tx, ctx, handle, parent, addr, leaf);
    if r.is_ok() {
        ctx.emit(TraceEventKind::NodeSplit, addr);
    }
    ctx.set_phase(prev);
    r
}

fn tx_split_inner(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    handle: &TreeHandle,
    parent: SplitParent,
    addr: Addr,
    leaf: bool,
) -> TxResult<(Addr, u64)> {
    let half = FANOUT / 2;
    let raddr = ctx.raw_mem().alloc_reuse(NODE_WORDS, 16);
    tx.retire_on_abort(raddr, NODE_WORDS, 16);
    ctx.charge_alloc();
    // Move the upper half to the sibling.
    for i in half..FANOUT {
        let k = tx.read(ctx, addr + OFF_KEYS + i as u64)?;
        let v = tx.read(ctx, addr + OFF_VALS + i as u64)?;
        tx.write(ctx, raddr + OFF_KEYS + (i - half) as u64, k)?;
        tx.write(ctx, raddr + OFF_VALS + (i - half) as u64, v)?;
        tx.write(ctx, addr + OFF_KEYS + i as u64, u64::MAX)?;
    }
    // Remaining sibling key slots start zeroed; mark them empty.
    for i in (FANOUT - half)..FANOUT {
        tx.write(ctx, raddr + OFF_KEYS + i as u64, u64::MAX)?;
    }
    // The sibling inherits the RF bound of the node it split from (§5: RF
    // values are heuristics, refreshed lazily by overshooting traversals).
    let rf = tx.read(ctx, addr + OFF_RF)?;
    tx.write(ctx, raddr + OFF_RF, rf)?;
    let next = tx.read(ctx, addr + OFF_NEXT)?;
    tx.write(ctx, raddr + OFF_NEXT, next)?;
    tx.write(ctx, raddr + OFF_META, pack_meta(leaf, false, FANOUT - half))?;
    let rfence = tx.read(ctx, raddr + OFF_KEYS)?;
    // Lehman-Yao bounds: the sibling inherits the node's high key, the
    // node's new high key is the fence.
    let high = tx.read(ctx, addr + OFF_HIGH)?;
    tx.write(ctx, raddr + OFF_HIGH, high)?;
    tx.write(ctx, raddr + OFF_LOW, rfence)?;
    tx.write(ctx, addr + OFF_HIGH, rfence)?;
    tx.write(ctx, addr + OFF_NEXT, raddr)?;
    tx.write(ctx, addr + OFF_META, pack_meta(leaf, false, half))?;
    let ver = tx.read(ctx, addr + OFF_VERSION)?;
    tx.write(ctx, addr + OFF_VERSION, ver + 1)?;

    match parent {
        SplitParent::Node(paddr, slot, pcount) => {
            // Clamp case (leftmost spine): the split child may hold keys
            // below its parent fence; lower the stale fence to the child's
            // true bound so the inserted fence keeps the order.
            let pfence = tx.read(ctx, paddr + OFF_KEYS + slot as u64)?;
            if rfence < pfence {
                let child_low = tx.read(ctx, addr + OFF_LOW)?;
                tx.write(ctx, paddr + OFF_KEYS + slot as u64, child_low)?;
            }
            // Shift parent entries right of `slot` and insert the fence.
            debug_assert!(pcount < FANOUT);
            let at = slot + 1;
            let mut i = pcount;
            while i > at {
                let k = tx.read(ctx, paddr + OFF_KEYS + (i - 1) as u64)?;
                let v = tx.read(ctx, paddr + OFF_VALS + (i - 1) as u64)?;
                tx.write(ctx, paddr + OFF_KEYS + i as u64, k)?;
                tx.write(ctx, paddr + OFF_VALS + i as u64, v)?;
                i -= 1;
            }
            tx.write(ctx, paddr + OFF_KEYS + at as u64, rfence)?;
            tx.write(ctx, paddr + OFF_VALS + at as u64, raddr)?;
            tx.write(ctx, paddr + OFF_META, pack_meta(false, false, pcount + 1))?;
        }
        SplitParent::Root => {
            // Root split: new root with two fences.
            let new_root = ctx.raw_mem().alloc_reuse(NODE_WORDS, 16);
            tx.retire_on_abort(new_root, NODE_WORDS, 16);
            ctx.charge_alloc();
            let k0 = tx.read(ctx, addr + OFF_KEYS)?;
            for i in 2..FANOUT {
                tx.write(ctx, new_root + OFF_KEYS + i as u64, u64::MAX)?;
            }
            tx.write(ctx, new_root + OFF_KEYS, k0)?;
            tx.write(ctx, new_root + OFF_VALS, addr)?;
            tx.write(ctx, new_root + OFF_KEYS + 1, rfence)?;
            tx.write(ctx, new_root + OFF_VALS + 1, raddr)?;
            tx.write(ctx, new_root + OFF_RF, u64::MAX)?;
            tx.write(ctx, new_root + OFF_HIGH, u64::MAX)?;
            tx.write(ctx, new_root + OFF_META, pack_meta(false, false, 2))?;
            tx.write(ctx, handle.root_word, new_root)?;
            let h = tx.read(ctx, handle.height_word)?;
            tx.write(ctx, handle.height_word, h + 1)?;
        }
    }
    ctx.control(8);
    Ok((raddr, rfence))
}

/// Right-hops across the leaf chain transactionally until reaching the
/// leaf responsible for `key` (splits only move keys right, so hopping
/// right from any leaf at or left of the target is always correct).
/// Returns the leaf address and count.
pub fn tx_hop_right(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    addr: Addr,
    count: usize,
    key: u64,
) -> TxResult<(Addr, usize)> {
    let prev = ctx.set_phase(Phase::HorizontalTraversal);
    let r = tx_hop_right_inner(tx, ctx, addr, count, key);
    ctx.set_phase(prev);
    r
}

fn tx_hop_right_inner(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    mut addr: Addr,
    mut count: usize,
    key: u64,
) -> TxResult<(Addr, usize)> {
    loop {
        let high = tx.read(ctx, addr + OFF_HIGH)?;
        ctx.control(1);
        if key < high {
            break;
        }
        let next = tx.read(ctx, addr + OFF_NEXT)?;
        if next == 0 {
            break;
        }
        ctx.stats.horizontal_steps += 1;
        addr = next;
        count = meta_count(tx.read(ctx, addr + OFF_META)?);
    }
    Ok((addr, count))
}

/// Transactional descent from the root to the leaf owning `key`. With
/// `may_insert`, any full node on the path is split inside the transaction
/// and the descent restarts (still inside the same transaction, which
/// observes its own split); the returned leaf then always has room.
/// Returns (leaf address, leaf count).
pub fn tx_descend(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    handle: &TreeHandle,
    key: u64,
    may_insert: bool,
) -> TxResult<(Addr, usize)> {
    let prev = ctx.set_phase(Phase::VerticalTraversal);
    let r = tx_descend_inner(tx, ctx, handle, key, may_insert);
    ctx.set_phase(prev);
    r
}

fn tx_descend_inner(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    handle: &TreeHandle,
    key: u64,
    may_insert: bool,
) -> TxResult<(Addr, usize)> {
    'restart: loop {
        ctx.stats.vertical_traversals += 1;
        let mut parent: Option<(Addr, usize, usize)> = None;
        let mut cur = tx.read(ctx, handle.root_word)?;
        loop {
            let meta = tx.read(ctx, cur + OFF_META)?;
            ctx.stats.vertical_steps += 1;
            ctx.control(2);
            let count = meta_count(meta);
            let leaf = meta_is_leaf(meta);
            if may_insert && count == FANOUT {
                let mode = match parent {
                    Some((p, s, c)) => SplitParent::Node(p, s, c),
                    None => SplitParent::Root,
                };
                tx_split(tx, ctx, handle, mode, cur, leaf)?;
                continue 'restart;
            }
            if leaf {
                let (cur_l, count_l) = tx_hop_right(tx, ctx, cur, count, key)?;
                if may_insert && count_l == FANOUT && cur_l != cur {
                    // Hopped onto a full leaf whose parent we do not hold.
                    // Committed state always publishes fences, so this can
                    // only be a transient view of another writer's split —
                    // restart the descent, which will land on the leaf via
                    // its fence path (with the parent in hand).
                    continue 'restart;
                }
                return Ok((cur_l, count_l));
            }
            let slot = tx_child_slot(tx, ctx, cur, count, key)?;
            let child = tx.read(ctx, cur + OFF_VALS + slot as u64)?;
            parent = Some((cur, slot, count));
            cur = child;
        }
    }
}

/// Transactional descent that keeps every node on the path above the
/// occupancy floor: any child at or below [`MIN_OCCUPANCY`] is rebalanced
/// (borrow from a richer sibling, else merge) *before* descending into it,
/// and a single-child inner root is collapsed, so the returned leaf can
/// always lose one entry without underflowing. Returns `(leaf address,
/// leaf count, floor)` where `floor` is the occupancy bound to pass to
/// [`tx_delete_at_leaf`] (zero when the leaf is the root, which is
/// exempt).
pub fn tx_descend_merging(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    handle: &TreeHandle,
    key: u64,
) -> TxResult<(Addr, usize, usize)> {
    let prev = ctx.set_phase(Phase::VerticalTraversal);
    let r = tx_descend_merging_inner(tx, ctx, handle, key);
    ctx.set_phase(prev);
    r
}

fn tx_descend_merging_inner(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    handle: &TreeHandle,
    key: u64,
) -> TxResult<(Addr, usize, usize)> {
    'restart: loop {
        ctx.stats.vertical_traversals += 1;
        let mut cur = tx.read(ctx, handle.root_word)?;
        let mut meta = tx.read(ctx, cur + OFF_META)?;
        ctx.control(2);
        // A single-child inner root is replaced by its child before the
        // descent; the old root is tombstoned and retired on commit.
        while !meta_is_leaf(meta) && meta_count(meta) == 1 {
            let child = tx.read(ctx, cur + OFF_VALS)?;
            tx.write(ctx, handle.root_word, child)?;
            let h = tx.read(ctx, handle.height_word)?;
            tx.write(ctx, handle.height_word, h - 1)?;
            tx_retire_node(tx, ctx, cur, meta)?;
            cur = child;
            meta = tx.read(ctx, cur + OFF_META)?;
        }
        let mut at_root = true;
        loop {
            ctx.stats.vertical_steps += 1;
            ctx.control(2);
            let count = meta_count(meta);
            if meta_is_leaf(meta) {
                let (cur_l, count_l) = tx_hop_right(tx, ctx, cur, count, key)?;
                if cur_l != cur && count_l <= MIN_OCCUPANCY {
                    // Hopped onto an at-floor leaf whose parent we do not
                    // hold; restart — the fence path reaches it with the
                    // parent in hand and rebalances it preemptively.
                    continue 'restart;
                }
                let floor = if at_root && cur_l == cur {
                    0
                } else {
                    MIN_OCCUPANCY
                };
                return Ok((cur_l, count_l, floor));
            }
            let slot = tx_child_slot(tx, ctx, cur, count, key)?;
            let child = tx.read(ctx, cur + OFF_VALS + slot as u64)?;
            let cmeta = tx.read(ctx, child + OFF_META)?;
            if meta_count(cmeta) <= MIN_OCCUPANCY && count > 1 {
                tx_fix_child(tx, ctx, cur, count, slot, meta_is_leaf(cmeta))?;
                continue 'restart;
            }
            at_root = false;
            cur = child;
            meta = cmeta;
        }
    }
}

/// Rebalances the at-floor child at `slot`: borrows from an adjacent
/// sibling with slack, else merges with one (both at the floor, so the
/// merged node holds at most `2 * MIN_OCCUPANCY <= FANOUT` entries).
fn tx_fix_child(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    parent: Addr,
    pcount: usize,
    slot: usize,
    leaf: bool,
) -> TxResult<()> {
    let prev = ctx.set_phase(Phase::StructureMod);
    let r = tx_fix_child_inner(tx, ctx, parent, pcount, slot, leaf);
    ctx.set_phase(prev);
    r
}

fn tx_fix_child_inner(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    parent: Addr,
    pcount: usize,
    slot: usize,
    leaf: bool,
) -> TxResult<()> {
    let child = tx.read(ctx, parent + OFF_VALS + slot as u64)?;
    let ccount = meta_count(tx.read(ctx, child + OFF_META)?);
    ctx.control(4);
    if slot + 1 < pcount {
        let right = tx.read(ctx, parent + OFF_VALS + (slot + 1) as u64)?;
        let rcount = meta_count(tx.read(ctx, right + OFF_META)?);
        if rcount > MIN_OCCUPANCY {
            return tx_borrow_from_right(tx, ctx, parent, slot, child, ccount, right, rcount, leaf);
        }
    }
    if slot > 0 {
        let left = tx.read(ctx, parent + OFF_VALS + (slot - 1) as u64)?;
        let lcount = meta_count(tx.read(ctx, left + OFF_META)?);
        if lcount > MIN_OCCUPANCY {
            return tx_borrow_from_left(tx, ctx, parent, slot, left, lcount, child, ccount, leaf);
        }
    }
    let right_slot = if slot + 1 < pcount { slot + 1 } else { slot };
    tx_merge_into_left(tx, ctx, parent, pcount, right_slot, leaf)
}

/// Moves the right sibling's first entry onto the child's end. The
/// boundary triple moves together: the parent fence, the donor's low key,
/// and the receiver's high key all become the donor's new minimum.
#[allow(clippy::too_many_arguments)]
fn tx_borrow_from_right(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    parent: Addr,
    slot: usize,
    left: Addr,
    lcount: usize,
    right: Addr,
    rcount: usize,
    leaf: bool,
) -> TxResult<()> {
    let k0 = tx.read(ctx, right + OFF_KEYS)?;
    let v0 = tx.read(ctx, right + OFF_VALS)?;
    tx.write(ctx, left + OFF_KEYS + lcount as u64, k0)?;
    tx.write(ctx, left + OFF_VALS + lcount as u64, v0)?;
    tx.write(ctx, left + OFF_META, pack_meta(leaf, false, lcount + 1))?;
    for i in 0..rcount - 1 {
        let k = tx.read(ctx, right + OFF_KEYS + (i + 1) as u64)?;
        let v = tx.read(ctx, right + OFF_VALS + (i + 1) as u64)?;
        tx.write(ctx, right + OFF_KEYS + i as u64, k)?;
        tx.write(ctx, right + OFF_VALS + i as u64, v)?;
    }
    tx.write(ctx, right + OFF_KEYS + (rcount - 1) as u64, u64::MAX)?;
    tx.write(ctx, right + OFF_META, pack_meta(leaf, false, rcount - 1))?;
    let fence = tx.read(ctx, right + OFF_KEYS)?;
    tx.write(ctx, parent + OFF_KEYS + (slot + 1) as u64, fence)?;
    tx.write(ctx, right + OFF_LOW, fence)?;
    tx.write(ctx, left + OFF_HIGH, fence)?;
    tx_bump_version(tx, ctx, left)?;
    tx_bump_version(tx, ctx, right)?;
    ctx.control(4);
    Ok(())
}

/// Moves the left sibling's last entry onto the child's front; the
/// boundary triple (parent fence, child low, donor high) follows it.
#[allow(clippy::too_many_arguments)]
fn tx_borrow_from_left(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    parent: Addr,
    slot: usize,
    left: Addr,
    lcount: usize,
    child: Addr,
    ccount: usize,
    leaf: bool,
) -> TxResult<()> {
    let k = tx.read(ctx, left + OFF_KEYS + (lcount - 1) as u64)?;
    let v = tx.read(ctx, left + OFF_VALS + (lcount - 1) as u64)?;
    tx.write(ctx, left + OFF_KEYS + (lcount - 1) as u64, u64::MAX)?;
    tx.write(ctx, left + OFF_META, pack_meta(leaf, false, lcount - 1))?;
    let mut i = ccount;
    while i > 0 {
        let pk = tx.read(ctx, child + OFF_KEYS + (i - 1) as u64)?;
        let pv = tx.read(ctx, child + OFF_VALS + (i - 1) as u64)?;
        tx.write(ctx, child + OFF_KEYS + i as u64, pk)?;
        tx.write(ctx, child + OFF_VALS + i as u64, pv)?;
        i -= 1;
    }
    tx.write(ctx, child + OFF_KEYS, k)?;
    tx.write(ctx, child + OFF_VALS, v)?;
    tx.write(ctx, child + OFF_META, pack_meta(leaf, false, ccount + 1))?;
    tx.write(ctx, parent + OFF_KEYS + slot as u64, k)?;
    tx.write(ctx, child + OFF_LOW, k)?;
    tx.write(ctx, left + OFF_HIGH, k)?;
    tx_bump_version(tx, ctx, left)?;
    tx_bump_version(tx, ctx, child)?;
    ctx.control(4);
    Ok(())
}

/// Merges the node at `right_slot` into its left sibling: the absorbed
/// node's entries are appended, the left node inherits its `NEXT` and
/// `HIGH` (keeping the leaf chain abutting), the parent entry is removed,
/// and the absorbed node is tombstoned and retired on commit.
fn tx_merge_into_left(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    parent: Addr,
    pcount: usize,
    right_slot: usize,
    leaf: bool,
) -> TxResult<()> {
    let left = tx.read(ctx, parent + OFF_VALS + (right_slot - 1) as u64)?;
    let right = tx.read(ctx, parent + OFF_VALS + right_slot as u64)?;
    let lcount = meta_count(tx.read(ctx, left + OFF_META)?);
    let rmeta = tx.read(ctx, right + OFF_META)?;
    let rcount = meta_count(rmeta);
    debug_assert!(lcount + rcount <= FANOUT, "merge would overflow the node");
    for i in 0..rcount {
        let k = tx.read(ctx, right + OFF_KEYS + i as u64)?;
        let v = tx.read(ctx, right + OFF_VALS + i as u64)?;
        tx.write(ctx, left + OFF_KEYS + (lcount + i) as u64, k)?;
        tx.write(ctx, left + OFF_VALS + (lcount + i) as u64, v)?;
    }
    let rnext = tx.read(ctx, right + OFF_NEXT)?;
    let rhigh = tx.read(ctx, right + OFF_HIGH)?;
    tx.write(ctx, left + OFF_NEXT, rnext)?;
    tx.write(ctx, left + OFF_HIGH, rhigh)?;
    tx.write(
        ctx,
        left + OFF_META,
        pack_meta(leaf, false, lcount + rcount),
    )?;
    tx_bump_version(tx, ctx, left)?;
    // Remove the parent's entry for the absorbed node.
    for i in right_slot..pcount - 1 {
        let k = tx.read(ctx, parent + OFF_KEYS + (i + 1) as u64)?;
        let v = tx.read(ctx, parent + OFF_VALS + (i + 1) as u64)?;
        tx.write(ctx, parent + OFF_KEYS + i as u64, k)?;
        tx.write(ctx, parent + OFF_VALS + i as u64, v)?;
    }
    tx.write(ctx, parent + OFF_KEYS + (pcount - 1) as u64, u64::MAX)?;
    tx.write(ctx, parent + OFF_META, pack_meta(false, false, pcount - 1))?;
    tx_retire_node(tx, ctx, right, rmeta)?;
    ctx.emit(TraceEventKind::NodeMerge, right);
    ctx.control(8);
    Ok(())
}

/// Tombstones an unlinked node (dead bit + version bump, so optimistic
/// readers holding a stale pointer fail their version check) and defers
/// its retirement to commit. The node's `NEXT` and `HIGH` stay intact for
/// same-epoch stale readers walking the chain.
fn tx_retire_node(tx: &mut Tx<'_>, ctx: &mut WarpCtx<'_>, addr: Addr, meta: u64) -> TxResult<()> {
    tx.write(ctx, addr + OFF_META, meta | META_DEAD)?;
    tx_bump_version(tx, ctx, addr)?;
    tx.defer_retire(addr, NODE_WORDS, 16);
    Ok(())
}

fn tx_bump_version(tx: &mut Tx<'_>, ctx: &mut WarpCtx<'_>, addr: Addr) -> TxResult<()> {
    let v = tx.read(ctx, addr + OFF_VERSION)?;
    tx.write(ctx, addr + OFF_VERSION, v + 1)
}

/// Outcome of a leaf-local transactional upsert.
pub enum LeafUpsert {
    /// Applied; carries the previous value or [`NO_VALUE`].
    Done(u64),
    /// The key is absent and the leaf is full — the caller must take a
    /// split-capable path.
    Full,
}

/// Upserts `key` in the (already located) leaf. Does not split.
pub fn tx_upsert_at_leaf(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    addr: Addr,
    count: usize,
    key: u64,
    val: u64,
) -> TxResult<LeafUpsert> {
    let prev = ctx.set_phase(Phase::LeafOp);
    let r = tx_upsert_at_leaf_inner(tx, ctx, addr, count, key, val);
    ctx.set_phase(prev);
    r
}

fn tx_upsert_at_leaf_inner(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    addr: Addr,
    count: usize,
    key: u64,
    val: u64,
) -> TxResult<LeafUpsert> {
    if let Some(slot) = tx_find(tx, ctx, addr, count, key)? {
        let old = tx.read(ctx, addr + OFF_VALS + slot as u64)?;
        tx.write(ctx, addr + OFF_VALS + slot as u64, val)?;
        return Ok(LeafUpsert::Done(old));
    }
    if count == FANOUT {
        return Ok(LeafUpsert::Full);
    }
    // Find the sorted slot.
    let mut slot = 0;
    while slot < count {
        let k = tx.read(ctx, addr + OFF_KEYS + slot as u64)?;
        ctx.control(1);
        if k >= key {
            break;
        }
        slot += 1;
    }
    let mut i = count;
    while i > slot {
        let k = tx.read(ctx, addr + OFF_KEYS + (i - 1) as u64)?;
        let pv = tx.read(ctx, addr + OFF_VALS + (i - 1) as u64)?;
        tx.write(ctx, addr + OFF_KEYS + i as u64, k)?;
        tx.write(ctx, addr + OFF_VALS + i as u64, pv)?;
        i -= 1;
    }
    tx.write(ctx, addr + OFF_KEYS + slot as u64, key)?;
    tx.write(ctx, addr + OFF_VALS + slot as u64, val)?;
    tx.write(ctx, addr + OFF_META, pack_meta(true, false, count + 1))?;
    Ok(LeafUpsert::Done(NO_VALUE))
}

/// Outcome of a leaf-local transactional delete.
pub enum LeafDelete {
    /// Applied (or the key was absent); carries the previous value or
    /// [`NO_VALUE`].
    Done(u64),
    /// The key is present but removing it would drop the leaf below
    /// `floor` — the caller must take a merge-capable path
    /// ([`tx_delete_rebalancing`]). The leaf is left untouched.
    Underflow,
}

/// Deletes `key` from the (already located) leaf. Does not rebalance:
/// when the leaf sits at `floor` and holds the key, it escapes with
/// [`LeafDelete::Underflow`] instead of violating the occupancy floor.
/// Pass `floor = 0` to delete unconditionally (root leaves are exempt
/// from the floor).
pub fn tx_delete_at_leaf(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    addr: Addr,
    count: usize,
    key: u64,
    floor: usize,
) -> TxResult<LeafDelete> {
    let prev = ctx.set_phase(Phase::LeafOp);
    let r = tx_delete_at_leaf_inner(tx, ctx, addr, count, key, floor);
    ctx.set_phase(prev);
    r
}

fn tx_delete_at_leaf_inner(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    addr: Addr,
    count: usize,
    key: u64,
    floor: usize,
) -> TxResult<LeafDelete> {
    match tx_find(tx, ctx, addr, count, key)? {
        None => Ok(LeafDelete::Done(NO_VALUE)),
        Some(_) if count <= floor => Ok(LeafDelete::Underflow),
        Some(slot) => {
            let old = tx.read(ctx, addr + OFF_VALS + slot as u64)?;
            for i in slot..count - 1 {
                let k = tx.read(ctx, addr + OFF_KEYS + (i + 1) as u64)?;
                let v = tx.read(ctx, addr + OFF_VALS + (i + 1) as u64)?;
                tx.write(ctx, addr + OFF_KEYS + i as u64, k)?;
                tx.write(ctx, addr + OFF_VALS + i as u64, v)?;
            }
            tx.write(ctx, addr + OFF_KEYS + (count - 1) as u64, u64::MAX)?;
            tx.write(ctx, addr + OFF_META, pack_meta(true, false, count - 1))?;
            Ok(LeafDelete::Done(old))
        }
    }
}

/// Full transactional delete with rebalancing: a merging descent keeps
/// the path above the occupancy floor, so the leaf-local delete can never
/// underflow. Returns the previous value or [`NO_VALUE`].
pub fn tx_delete_rebalancing(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    handle: &TreeHandle,
    key: u64,
) -> TxResult<u64> {
    let (addr, count, floor) = tx_descend_merging(tx, ctx, handle, key)?;
    match tx_delete_at_leaf(tx, ctx, addr, count, key, floor)? {
        LeafDelete::Done(old) => Ok(old),
        LeafDelete::Underflow => unreachable!("merging descent guarantees slack above the floor"),
    }
}

/// Reads `key`'s value from the (already located) leaf, or [`NO_VALUE`].
pub fn tx_query_at_leaf(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    addr: Addr,
    count: usize,
    key: u64,
) -> TxResult<u64> {
    let prev = ctx.set_phase(Phase::LeafOp);
    let r = match tx_find(tx, ctx, addr, count, key) {
        Ok(None) => Ok(NO_VALUE),
        Ok(Some(slot)) => tx.read(ctx, addr + OFF_VALS + slot as u64),
        Err(e) => Err(e),
    };
    ctx.set_phase(prev);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{arena_budget, bulk_build};
    use crate::refops;
    use crate::validate::validate;
    use eirene_sim::{Device, DeviceConfig};
    use eirene_stm::Stm;

    fn setup(n: u64) -> (Device, TreeHandle, Stm) {
        let dev = Device::new(
            arena_budget(n as usize, 4 * n as usize + 64) + (1 << 14),
            DeviceConfig::test_small(),
        );
        let pairs: Vec<(u64, u64)> = (1..=n).map(|i| (2 * i, 2 * i + 1)).collect();
        let t = bulk_build(dev.mem(), &pairs);
        let stm = Stm::new(dev.mem(), 1 << 12);
        (dev, t, stm)
    }

    #[test]
    fn tx_descend_reaches_correct_leaf() {
        let (dev, t, stm) = setup(1000);
        let mut ctx = WarpCtx::new(dev.mem(), dev.config(), 0);
        let v = stm
            .run(&mut ctx, 4, |tx, ctx| {
                let (addr, count) = tx_descend(tx, ctx, &t, 500, false)?;
                tx_query_at_leaf(tx, ctx, addr, count, 500)
            })
            .unwrap();
        assert_eq!(v, 501);
    }

    #[test]
    fn tx_upsert_and_delete_roundtrip() {
        let (dev, t, stm) = setup(200);
        let mut ctx = WarpCtx::new(dev.mem(), dev.config(), 0);
        stm.run(&mut ctx, 4, |tx, ctx| {
            let (addr, count) = tx_descend(tx, ctx, &t, 7, true)?;
            match tx_upsert_at_leaf(tx, ctx, addr, count, 7, 70)? {
                LeafUpsert::Done(old) => {
                    assert_eq!(old, NO_VALUE);
                    Ok(())
                }
                LeafUpsert::Full => unreachable!("descent guarantees room"),
            }
        })
        .unwrap();
        assert_eq!(refops::get(dev.mem(), &t, 7), Some(70));
        stm.run(&mut ctx, 4, |tx, ctx| {
            let old = tx_delete_rebalancing(tx, ctx, &t, 7)?;
            assert_eq!(old, 70);
            Ok(())
        })
        .unwrap();
        assert_eq!(refops::get(dev.mem(), &t, 7), None);
        validate(dev.mem(), &t).unwrap();
    }

    #[test]
    fn tx_inserts_split_and_stay_valid() {
        let (dev, t, stm) = setup(100);
        let mut ctx = WarpCtx::new(dev.mem(), dev.config(), 0);
        for i in 0..100u64 {
            stm.run(&mut ctx, 8, |tx, ctx| {
                let (addr, count) = tx_descend(tx, ctx, &t, 2 * i + 1, true)?;
                match tx_upsert_at_leaf(tx, ctx, addr, count, 2 * i + 1, i)? {
                    LeafUpsert::Done(_) => Ok(()),
                    LeafUpsert::Full => unreachable!(),
                }
            })
            .unwrap();
        }
        validate(dev.mem(), &t).unwrap();
        for i in 0..100u64 {
            assert_eq!(refops::get(dev.mem(), &t, 2 * i + 1), Some(i));
        }
    }

    #[test]
    fn aborted_split_rolls_back_cleanly() {
        let (dev, t, stm) = setup(100);
        let mut ctx = WarpCtx::new(dev.mem(), dev.config(), 0);
        let before = refops::contents(dev.mem(), &t);
        // Force the leaf containing key 2 full, then run a tx that splits
        // and deliberately aborts.
        for d in 0..12u64 {
            refops::upsert(dev.mem(), &t, 3 + d * 2, 0);
        }
        let snapshot = refops::contents(dev.mem(), &t);
        assert!(snapshot.len() > before.len());
        let mut tx = stm.begin();
        let r = tx_descend(&mut tx, &mut ctx, &t, 5_000_000, true);
        assert!(r.is_ok());
        tx.rollback(&mut ctx);
        assert_eq!(
            refops::contents(dev.mem(), &t),
            snapshot,
            "rollback must undo"
        );
        validate(dev.mem(), &t).unwrap();
    }

    #[test]
    fn aborted_split_retires_its_orphan_sibling() {
        let (dev, t, stm) = setup(100);
        let mut ctx = WarpCtx::new(dev.mem(), dev.config(), 0);
        // Fill the rightmost leaf to FANOUT so a split-capable descent
        // towards a huge key must split it.
        let mut k = 1_000u64;
        loop {
            let count = stm
                .run(&mut ctx, 4, |tx, ctx| {
                    Ok(tx_descend(tx, ctx, &t, 5_000_000, false)?.1)
                })
                .unwrap();
            if count == FANOUT {
                break;
            }
            refops::upsert(dev.mem(), &t, k, 0);
            k += 2;
        }
        let snapshot = refops::contents(dev.mem(), &t);
        let retired_before = dev.mem().slab_stats().retired;
        let mut tx = stm.begin();
        tx_descend(&mut tx, &mut ctx, &t, 5_000_000, true).unwrap();
        tx.rollback(&mut ctx);
        assert_eq!(
            refops::contents(dev.mem(), &t),
            snapshot,
            "rollback must undo the split"
        );
        validate(dev.mem(), &t).unwrap();
        // The never-published sibling must land in the slab quarantine,
        // not leak into the bump arena.
        assert!(
            dev.mem().slab_stats().retired > retired_before,
            "aborted split must retire its orphaned sibling"
        );
    }

    #[test]
    fn leaf_delete_escapes_at_the_occupancy_floor() {
        use crate::node::MIN_OCCUPANCY;
        let (dev, t, stm) = setup(100);
        let mut ctx = WarpCtx::new(dev.mem(), dev.config(), 0);
        // Drain the leftmost leaf one key at a time with the floor-aware
        // leaf delete; once it reaches the floor the op must escape
        // without modifying the leaf.
        let mut escaped = None;
        for i in 1..=FANOUT as u64 {
            let key = 2 * i;
            let r = stm
                .run(&mut ctx, 4, |tx, ctx| {
                    let (addr, count) = tx_descend(tx, ctx, &t, key, false)?;
                    tx_delete_at_leaf(tx, ctx, addr, count, key, MIN_OCCUPANCY)
                })
                .unwrap();
            match r {
                LeafDelete::Done(v) => assert_eq!(v, 2 * i + 1),
                LeafDelete::Underflow => {
                    escaped = Some(key);
                    break;
                }
            }
        }
        let key = escaped.expect("the leaf must hit the floor");
        assert_eq!(
            refops::get(dev.mem(), &t, key),
            Some(key + 1),
            "the underflow escape must leave the leaf untouched"
        );
        // The merge-capable path finishes the job.
        stm.run(&mut ctx, 8, |tx, ctx| {
            tx_delete_rebalancing(tx, ctx, &t, key)
        })
        .unwrap();
        assert_eq!(refops::get(dev.mem(), &t, key), None);
        crate::validate::validate_with(dev.mem(), &t, crate::validate::ValidateOpts::merging())
            .unwrap();
    }

    #[test]
    fn tx_deletes_merge_shrink_and_recycle() {
        let (dev, t, stm) = setup(1000);
        let mut ctx = WarpCtx::new(dev.mem(), dev.config(), 0);
        let h0 = t.height(dev.mem());
        assert!(h0 >= 3);
        for i in 1..=995u64 {
            let old = stm
                .run(&mut ctx, 16, |tx, ctx| {
                    tx_delete_rebalancing(tx, ctx, &t, 2 * i)
                })
                .unwrap();
            assert_eq!(old, 2 * i + 1, "key {}", 2 * i);
        }
        assert!(t.height(dev.mem()) < h0, "merges must shrink the tree");
        let left = refops::contents(dev.mem(), &t);
        assert_eq!(left.len(), 5);
        crate::validate::validate_with(dev.mem(), &t, crate::validate::ValidateOpts::merging())
            .unwrap();
        let st = dev.mem().slab_stats();
        assert!(st.retired > 0, "merged-away nodes must be quarantined");
        // An epoch advance drains the quarantine into the free lists.
        dev.mem().advance_epoch();
        let st = dev.mem().slab_stats();
        assert_eq!(st.retired, 0);
        assert!(st.free > 0);
    }

    #[test]
    fn hop_right_walks_to_covering_leaf() {
        let (dev, t, stm) = setup(1000);
        let mut ctx = WarpCtx::new(dev.mem(), dev.config(), 0);
        // Start from the leftmost leaf and hop to key 1500.
        let mut leftmost = crate::node::NodeRef {
            addr: t.root(dev.mem()),
        };
        while !leftmost.is_leaf(dev.mem()) {
            leftmost = crate::node::NodeRef {
                addr: leftmost.val(dev.mem(), 0),
            };
        }
        let v = stm
            .run(&mut ctx, 4, |tx, ctx| {
                let count = leftmost.count(dev.mem());
                let (addr, count) = tx_hop_right(tx, ctx, leftmost.addr, count, 1500)?;
                tx_query_at_leaf(tx, ctx, addr, count, 1500)
            })
            .unwrap();
        assert_eq!(v, 1501);
        assert!(ctx.stats.horizontal_steps > 0);
    }
}
