//! Transactional tree operations over the word-based STM.
//!
//! Shared by the STM GB-tree baseline (which wraps *every* request in one
//! transaction) and by Eirene's update kernel (which uses them only for
//! the leaf region, plus the full descent as its fallback path once the
//! optimistic retry threshold is exceeded — Alg. 1 lines 27-46).

use crate::build::TreeHandle;
use crate::node::{
    meta_count, meta_is_leaf, pack_meta, FANOUT, NODE_WORDS, OFF_HIGH, OFF_KEYS, OFF_LOW, OFF_META,
    OFF_NEXT, OFF_RF, OFF_VALS, OFF_VERSION,
};
use eirene_sim::{Addr, Phase, TraceEventKind, WarpCtx};
use eirene_stm::{Tx, TxResult};

/// Sentinel for "no previous value".
pub const NO_VALUE: u64 = u64::MAX;

/// Where a split publishes its new fence.
pub enum SplitParent {
    /// Insert the fence into this (non-full) parent: `(address, child
    /// slot, count)`.
    Node(Addr, usize, usize),
    /// The split node is the root: build a new root.
    Root,
}

/// Transactional binary search for the descent slot in an inner node:
/// probes `O(log FANOUT)` keys, each a transactional read.
pub fn tx_child_slot(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    addr: Addr,
    count: usize,
    key: u64,
) -> TxResult<usize> {
    let mut lo = 0usize; // invariant: keys[lo] <= key or lo == 0
    let mut hi = count; // invariant: keys[hi] > key (virtual +inf)
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        let k = tx.read(ctx, addr + OFF_KEYS + mid as u64)?;
        ctx.control(2);
        if k <= key {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

/// Transactional search for an exact key in a leaf.
pub fn tx_find(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    addr: Addr,
    count: usize,
    key: u64,
) -> TxResult<Option<usize>> {
    if count == 0 {
        return Ok(None);
    }
    let slot = tx_child_slot(tx, ctx, addr, count, key)?;
    let k = tx.read(ctx, addr + OFF_KEYS + slot as u64)?;
    ctx.control(1);
    Ok((k == key).then_some(slot))
}

/// Splits a full node inside the transaction, returning the sibling's
/// address and fence key. All writes are transactional, so an abort rolls
/// the whole split back (the freshly allocated sibling leaks into the bump
/// arena, as it would on a GPU free-list allocator without reclamation).
pub fn tx_split(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    handle: &TreeHandle,
    parent: SplitParent,
    addr: Addr,
    leaf: bool,
) -> TxResult<(Addr, u64)> {
    // The phase wrapper restores attribution even when a transactional
    // access aborts out of the split with `?`.
    let prev = ctx.set_phase(Phase::StructureMod);
    let r = tx_split_inner(tx, ctx, handle, parent, addr, leaf);
    if r.is_ok() {
        ctx.emit(TraceEventKind::NodeSplit, addr);
    }
    ctx.set_phase(prev);
    r
}

fn tx_split_inner(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    handle: &TreeHandle,
    parent: SplitParent,
    addr: Addr,
    leaf: bool,
) -> TxResult<(Addr, u64)> {
    let half = FANOUT / 2;
    let raddr = ctx.raw_mem().alloc_aligned(NODE_WORDS, 16);
    ctx.charge_alloc();
    // Move the upper half to the sibling.
    for i in half..FANOUT {
        let k = tx.read(ctx, addr + OFF_KEYS + i as u64)?;
        let v = tx.read(ctx, addr + OFF_VALS + i as u64)?;
        tx.write(ctx, raddr + OFF_KEYS + (i - half) as u64, k)?;
        tx.write(ctx, raddr + OFF_VALS + (i - half) as u64, v)?;
        tx.write(ctx, addr + OFF_KEYS + i as u64, u64::MAX)?;
    }
    // Remaining sibling key slots start zeroed; mark them empty.
    for i in (FANOUT - half)..FANOUT {
        tx.write(ctx, raddr + OFF_KEYS + i as u64, u64::MAX)?;
    }
    // The sibling inherits the RF bound of the node it split from (§5: RF
    // values are heuristics, refreshed lazily by overshooting traversals).
    let rf = tx.read(ctx, addr + OFF_RF)?;
    tx.write(ctx, raddr + OFF_RF, rf)?;
    let next = tx.read(ctx, addr + OFF_NEXT)?;
    tx.write(ctx, raddr + OFF_NEXT, next)?;
    tx.write(ctx, raddr + OFF_META, pack_meta(leaf, false, FANOUT - half))?;
    let rfence = tx.read(ctx, raddr + OFF_KEYS)?;
    // Lehman-Yao bounds: the sibling inherits the node's high key, the
    // node's new high key is the fence.
    let high = tx.read(ctx, addr + OFF_HIGH)?;
    tx.write(ctx, raddr + OFF_HIGH, high)?;
    tx.write(ctx, raddr + OFF_LOW, rfence)?;
    tx.write(ctx, addr + OFF_HIGH, rfence)?;
    tx.write(ctx, addr + OFF_NEXT, raddr)?;
    tx.write(ctx, addr + OFF_META, pack_meta(leaf, false, half))?;
    let ver = tx.read(ctx, addr + OFF_VERSION)?;
    tx.write(ctx, addr + OFF_VERSION, ver + 1)?;

    match parent {
        SplitParent::Node(paddr, slot, pcount) => {
            // Clamp case (leftmost spine): the split child may hold keys
            // below its parent fence; lower the stale fence to the child's
            // true bound so the inserted fence keeps the order.
            let pfence = tx.read(ctx, paddr + OFF_KEYS + slot as u64)?;
            if rfence < pfence {
                let child_low = tx.read(ctx, addr + OFF_LOW)?;
                tx.write(ctx, paddr + OFF_KEYS + slot as u64, child_low)?;
            }
            // Shift parent entries right of `slot` and insert the fence.
            debug_assert!(pcount < FANOUT);
            let at = slot + 1;
            let mut i = pcount;
            while i > at {
                let k = tx.read(ctx, paddr + OFF_KEYS + (i - 1) as u64)?;
                let v = tx.read(ctx, paddr + OFF_VALS + (i - 1) as u64)?;
                tx.write(ctx, paddr + OFF_KEYS + i as u64, k)?;
                tx.write(ctx, paddr + OFF_VALS + i as u64, v)?;
                i -= 1;
            }
            tx.write(ctx, paddr + OFF_KEYS + at as u64, rfence)?;
            tx.write(ctx, paddr + OFF_VALS + at as u64, raddr)?;
            tx.write(ctx, paddr + OFF_META, pack_meta(false, false, pcount + 1))?;
        }
        SplitParent::Root => {
            // Root split: new root with two fences.
            let new_root = ctx.raw_mem().alloc_aligned(NODE_WORDS, 16);
            ctx.charge_alloc();
            let k0 = tx.read(ctx, addr + OFF_KEYS)?;
            for i in 2..FANOUT {
                tx.write(ctx, new_root + OFF_KEYS + i as u64, u64::MAX)?;
            }
            tx.write(ctx, new_root + OFF_KEYS, k0)?;
            tx.write(ctx, new_root + OFF_VALS, addr)?;
            tx.write(ctx, new_root + OFF_KEYS + 1, rfence)?;
            tx.write(ctx, new_root + OFF_VALS + 1, raddr)?;
            tx.write(ctx, new_root + OFF_RF, u64::MAX)?;
            tx.write(ctx, new_root + OFF_HIGH, u64::MAX)?;
            tx.write(ctx, new_root + OFF_META, pack_meta(false, false, 2))?;
            tx.write(ctx, handle.root_word, new_root)?;
            let h = tx.read(ctx, handle.height_word)?;
            tx.write(ctx, handle.height_word, h + 1)?;
        }
    }
    ctx.control(8);
    Ok((raddr, rfence))
}

/// Right-hops across the leaf chain transactionally until reaching the
/// leaf responsible for `key` (splits only move keys right, so hopping
/// right from any leaf at or left of the target is always correct).
/// Returns the leaf address and count.
pub fn tx_hop_right(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    addr: Addr,
    count: usize,
    key: u64,
) -> TxResult<(Addr, usize)> {
    let prev = ctx.set_phase(Phase::HorizontalTraversal);
    let r = tx_hop_right_inner(tx, ctx, addr, count, key);
    ctx.set_phase(prev);
    r
}

fn tx_hop_right_inner(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    mut addr: Addr,
    mut count: usize,
    key: u64,
) -> TxResult<(Addr, usize)> {
    loop {
        let high = tx.read(ctx, addr + OFF_HIGH)?;
        ctx.control(1);
        if key < high {
            break;
        }
        let next = tx.read(ctx, addr + OFF_NEXT)?;
        if next == 0 {
            break;
        }
        ctx.stats.horizontal_steps += 1;
        addr = next;
        count = meta_count(tx.read(ctx, addr + OFF_META)?);
    }
    Ok((addr, count))
}

/// Transactional descent from the root to the leaf owning `key`. With
/// `may_insert`, any full node on the path is split inside the transaction
/// and the descent restarts (still inside the same transaction, which
/// observes its own split); the returned leaf then always has room.
/// Returns (leaf address, leaf count).
pub fn tx_descend(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    handle: &TreeHandle,
    key: u64,
    may_insert: bool,
) -> TxResult<(Addr, usize)> {
    let prev = ctx.set_phase(Phase::VerticalTraversal);
    let r = tx_descend_inner(tx, ctx, handle, key, may_insert);
    ctx.set_phase(prev);
    r
}

fn tx_descend_inner(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    handle: &TreeHandle,
    key: u64,
    may_insert: bool,
) -> TxResult<(Addr, usize)> {
    'restart: loop {
        ctx.stats.vertical_traversals += 1;
        let mut parent: Option<(Addr, usize, usize)> = None;
        let mut cur = tx.read(ctx, handle.root_word)?;
        loop {
            let meta = tx.read(ctx, cur + OFF_META)?;
            ctx.stats.vertical_steps += 1;
            ctx.control(2);
            let count = meta_count(meta);
            let leaf = meta_is_leaf(meta);
            if may_insert && count == FANOUT {
                let mode = match parent {
                    Some((p, s, c)) => SplitParent::Node(p, s, c),
                    None => SplitParent::Root,
                };
                tx_split(tx, ctx, handle, mode, cur, leaf)?;
                continue 'restart;
            }
            if leaf {
                let (cur_l, count_l) = tx_hop_right(tx, ctx, cur, count, key)?;
                if may_insert && count_l == FANOUT && cur_l != cur {
                    // Hopped onto a full leaf whose parent we do not hold.
                    // Committed state always publishes fences, so this can
                    // only be a transient view of another writer's split —
                    // restart the descent, which will land on the leaf via
                    // its fence path (with the parent in hand).
                    continue 'restart;
                }
                return Ok((cur_l, count_l));
            }
            let slot = tx_child_slot(tx, ctx, cur, count, key)?;
            let child = tx.read(ctx, cur + OFF_VALS + slot as u64)?;
            parent = Some((cur, slot, count));
            cur = child;
        }
    }
}

/// Outcome of a leaf-local transactional upsert.
pub enum LeafUpsert {
    /// Applied; carries the previous value or [`NO_VALUE`].
    Done(u64),
    /// The key is absent and the leaf is full — the caller must take a
    /// split-capable path.
    Full,
}

/// Upserts `key` in the (already located) leaf. Does not split.
pub fn tx_upsert_at_leaf(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    addr: Addr,
    count: usize,
    key: u64,
    val: u64,
) -> TxResult<LeafUpsert> {
    let prev = ctx.set_phase(Phase::LeafOp);
    let r = tx_upsert_at_leaf_inner(tx, ctx, addr, count, key, val);
    ctx.set_phase(prev);
    r
}

fn tx_upsert_at_leaf_inner(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    addr: Addr,
    count: usize,
    key: u64,
    val: u64,
) -> TxResult<LeafUpsert> {
    if let Some(slot) = tx_find(tx, ctx, addr, count, key)? {
        let old = tx.read(ctx, addr + OFF_VALS + slot as u64)?;
        tx.write(ctx, addr + OFF_VALS + slot as u64, val)?;
        return Ok(LeafUpsert::Done(old));
    }
    if count == FANOUT {
        return Ok(LeafUpsert::Full);
    }
    // Find the sorted slot.
    let mut slot = 0;
    while slot < count {
        let k = tx.read(ctx, addr + OFF_KEYS + slot as u64)?;
        ctx.control(1);
        if k >= key {
            break;
        }
        slot += 1;
    }
    let mut i = count;
    while i > slot {
        let k = tx.read(ctx, addr + OFF_KEYS + (i - 1) as u64)?;
        let pv = tx.read(ctx, addr + OFF_VALS + (i - 1) as u64)?;
        tx.write(ctx, addr + OFF_KEYS + i as u64, k)?;
        tx.write(ctx, addr + OFF_VALS + i as u64, pv)?;
        i -= 1;
    }
    tx.write(ctx, addr + OFF_KEYS + slot as u64, key)?;
    tx.write(ctx, addr + OFF_VALS + slot as u64, val)?;
    tx.write(ctx, addr + OFF_META, pack_meta(true, false, count + 1))?;
    Ok(LeafUpsert::Done(NO_VALUE))
}

/// Deletes `key` from the (already located) leaf, returning the previous
/// value or [`NO_VALUE`].
pub fn tx_delete_at_leaf(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    addr: Addr,
    count: usize,
    key: u64,
) -> TxResult<u64> {
    let prev = ctx.set_phase(Phase::LeafOp);
    let r = tx_delete_at_leaf_inner(tx, ctx, addr, count, key);
    ctx.set_phase(prev);
    r
}

fn tx_delete_at_leaf_inner(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    addr: Addr,
    count: usize,
    key: u64,
) -> TxResult<u64> {
    match tx_find(tx, ctx, addr, count, key)? {
        None => Ok(NO_VALUE),
        Some(slot) => {
            let old = tx.read(ctx, addr + OFF_VALS + slot as u64)?;
            for i in slot..count - 1 {
                let k = tx.read(ctx, addr + OFF_KEYS + (i + 1) as u64)?;
                let v = tx.read(ctx, addr + OFF_VALS + (i + 1) as u64)?;
                tx.write(ctx, addr + OFF_KEYS + i as u64, k)?;
                tx.write(ctx, addr + OFF_VALS + i as u64, v)?;
            }
            tx.write(ctx, addr + OFF_KEYS + (count - 1) as u64, u64::MAX)?;
            tx.write(ctx, addr + OFF_META, pack_meta(true, false, count - 1))?;
            Ok(old)
        }
    }
}

/// Reads `key`'s value from the (already located) leaf, or [`NO_VALUE`].
pub fn tx_query_at_leaf(
    tx: &mut Tx<'_>,
    ctx: &mut WarpCtx<'_>,
    addr: Addr,
    count: usize,
    key: u64,
) -> TxResult<u64> {
    let prev = ctx.set_phase(Phase::LeafOp);
    let r = match tx_find(tx, ctx, addr, count, key) {
        Ok(None) => Ok(NO_VALUE),
        Ok(Some(slot)) => tx.read(ctx, addr + OFF_VALS + slot as u64),
        Err(e) => Err(e),
    };
    ctx.set_phase(prev);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{arena_budget, bulk_build};
    use crate::refops;
    use crate::validate::validate;
    use eirene_sim::{Device, DeviceConfig};
    use eirene_stm::Stm;

    fn setup(n: u64) -> (Device, TreeHandle, Stm) {
        let dev = Device::new(
            arena_budget(n as usize, 4 * n as usize + 64) + (1 << 14),
            DeviceConfig::test_small(),
        );
        let pairs: Vec<(u64, u64)> = (1..=n).map(|i| (2 * i, 2 * i + 1)).collect();
        let t = bulk_build(dev.mem(), &pairs);
        let stm = Stm::new(dev.mem(), 1 << 12);
        (dev, t, stm)
    }

    #[test]
    fn tx_descend_reaches_correct_leaf() {
        let (dev, t, stm) = setup(1000);
        let mut ctx = WarpCtx::new(dev.mem(), dev.config(), 0);
        let v = stm
            .run(&mut ctx, 4, |tx, ctx| {
                let (addr, count) = tx_descend(tx, ctx, &t, 500, false)?;
                tx_query_at_leaf(tx, ctx, addr, count, 500)
            })
            .unwrap();
        assert_eq!(v, 501);
    }

    #[test]
    fn tx_upsert_and_delete_roundtrip() {
        let (dev, t, stm) = setup(200);
        let mut ctx = WarpCtx::new(dev.mem(), dev.config(), 0);
        stm.run(&mut ctx, 4, |tx, ctx| {
            let (addr, count) = tx_descend(tx, ctx, &t, 7, true)?;
            match tx_upsert_at_leaf(tx, ctx, addr, count, 7, 70)? {
                LeafUpsert::Done(old) => {
                    assert_eq!(old, NO_VALUE);
                    Ok(())
                }
                LeafUpsert::Full => unreachable!("descent guarantees room"),
            }
        })
        .unwrap();
        assert_eq!(refops::get(dev.mem(), &t, 7), Some(70));
        stm.run(&mut ctx, 4, |tx, ctx| {
            let (addr, count) = tx_descend(tx, ctx, &t, 7, false)?;
            let old = tx_delete_at_leaf(tx, ctx, addr, count, 7)?;
            assert_eq!(old, 70);
            Ok(())
        })
        .unwrap();
        assert_eq!(refops::get(dev.mem(), &t, 7), None);
        validate(dev.mem(), &t).unwrap();
    }

    #[test]
    fn tx_inserts_split_and_stay_valid() {
        let (dev, t, stm) = setup(100);
        let mut ctx = WarpCtx::new(dev.mem(), dev.config(), 0);
        for i in 0..100u64 {
            stm.run(&mut ctx, 8, |tx, ctx| {
                let (addr, count) = tx_descend(tx, ctx, &t, 2 * i + 1, true)?;
                match tx_upsert_at_leaf(tx, ctx, addr, count, 2 * i + 1, i)? {
                    LeafUpsert::Done(_) => Ok(()),
                    LeafUpsert::Full => unreachable!(),
                }
            })
            .unwrap();
        }
        validate(dev.mem(), &t).unwrap();
        for i in 0..100u64 {
            assert_eq!(refops::get(dev.mem(), &t, 2 * i + 1), Some(i));
        }
    }

    #[test]
    fn aborted_split_rolls_back_cleanly() {
        let (dev, t, stm) = setup(100);
        let mut ctx = WarpCtx::new(dev.mem(), dev.config(), 0);
        let before = refops::contents(dev.mem(), &t);
        // Force the leaf containing key 2 full, then run a tx that splits
        // and deliberately aborts.
        for d in 0..12u64 {
            refops::upsert(dev.mem(), &t, 3 + d * 2, 0);
        }
        let snapshot = refops::contents(dev.mem(), &t);
        assert!(snapshot.len() > before.len());
        let mut tx = stm.begin();
        let r = tx_descend(&mut tx, &mut ctx, &t, 5_000_000, true);
        assert!(r.is_ok());
        tx.rollback(&mut ctx);
        assert_eq!(
            refops::contents(dev.mem(), &t),
            snapshot,
            "rollback must undo"
        );
        validate(dev.mem(), &t).unwrap();
    }

    #[test]
    fn hop_right_walks_to_covering_leaf() {
        let (dev, t, stm) = setup(1000);
        let mut ctx = WarpCtx::new(dev.mem(), dev.config(), 0);
        // Start from the leftmost leaf and hop to key 1500.
        let mut leftmost = crate::node::NodeRef {
            addr: t.root(dev.mem()),
        };
        while !leftmost.is_leaf(dev.mem()) {
            leftmost = crate::node::NodeRef {
                addr: leftmost.val(dev.mem(), 0),
            };
        }
        let v = stm
            .run(&mut ctx, 4, |tx, ctx| {
                let count = leftmost.count(dev.mem());
                let (addr, count) = tx_hop_right(tx, ctx, leftmost.addr, count, 1500)?;
                tx_query_at_leaf(tx, ctx, addr, count, 1500)
            })
            .unwrap();
        assert_eq!(v, 1501);
        assert!(ctx.stats.horizontal_steps > 0);
    }
}
