//! Host-side reference operations: uninstrumented, single-threaded tree
//! ops used by the bulk loader's consumers, differential tests, and
//! examples. Device kernels implement the same logic through `WarpCtx`.

use crate::build::TreeHandle;
use crate::node::{NodeRef, FANOUT, META_DEAD, MIN_OCCUPANCY, OFF_META};
use eirene_sim::{Addr, GlobalMemory};

/// Result of a recursive insert at one level.
enum Ins {
    Done(Option<u64>),
    /// Child split: (fence key of new right sibling, its address,
    /// previous value if the key existed).
    Split(u64, Addr, Option<u64>),
}

/// Looks up `key`, returning its value if present.
pub fn get(mem: &GlobalMemory, tree: &TreeHandle, key: u64) -> Option<u64> {
    let mut node = NodeRef {
        addr: tree.root(mem),
    };
    while !node.is_leaf(mem) {
        node = NodeRef {
            addr: node.val(mem, child_slot(mem, node, key)),
        };
    }
    let c = node.count(mem);
    (0..c)
        .find(|&i| node.key(mem, i) == key)
        .map(|i| node.val(mem, i))
}

/// Inserts or updates `key`, returning the previous value if any.
pub fn upsert(mem: &GlobalMemory, tree: &TreeHandle, key: u64, val: u64) -> Option<u64> {
    let root = NodeRef {
        addr: tree.root(mem),
    };
    match insert_rec(mem, root, key, val) {
        Ins::Done(old) => old,
        Ins::Split(fence, right, old) => {
            // Root split: a new root with two fences.
            let new_root = NodeRef::alloc(mem, false);
            new_root.set_key(mem, 0, first_key_bound(mem, root));
            new_root.set_val(mem, 0, root.addr);
            new_root.set_key(mem, 1, fence);
            new_root.set_val(mem, 1, right);
            new_root.set_count(mem, 2);
            let height = tree.height(mem);
            tree.set_root(mem, new_root.addr, height + 1);
            old
        }
    }
}

/// Result of a recursive delete at one level.
enum Del {
    NotFound,
    Done(u64),
    /// Deleted, and the node dropped below [`MIN_OCCUPANCY`]; the parent
    /// must borrow into it or merge it with a sibling.
    Underflow(u64),
}

/// Deletes `key`, returning its previous value if it was present.
/// Underflowing nodes rebalance: a node that drops below
/// [`MIN_OCCUPANCY`] borrows an entry from an adjacent sibling when one
/// can spare it, and merges right-into-left otherwise. Merged-away nodes
/// are tombstoned (`META_DEAD`) and retired into the arena's epoch
/// quarantine, so stale readers keep seeing intact NEXT/HIGH words until
/// reclamation. An inner root left with a single child collapses,
/// shrinking the height.
pub fn delete(mem: &GlobalMemory, tree: &TreeHandle, key: u64) -> Option<u64> {
    let root = NodeRef {
        addr: tree.root(mem),
    };
    let old = match delete_rec(mem, root, key) {
        Del::NotFound => return None,
        Del::Done(old) | Del::Underflow(old) => old,
    };
    collapse_root(mem, tree);
    Some(old)
}

fn delete_rec(mem: &GlobalMemory, node: NodeRef, key: u64) -> Del {
    if node.is_leaf(mem) {
        return leaf_delete(mem, node, key);
    }
    let slot = child_slot(mem, node, key);
    let child = NodeRef {
        addr: node.val(mem, slot),
    };
    match delete_rec(mem, child, key) {
        Del::NotFound => Del::NotFound,
        Del::Done(old) => Del::Done(old),
        Del::Underflow(old) => {
            fix_underflow(mem, node, slot);
            if node.count(mem) < MIN_OCCUPANCY {
                Del::Underflow(old)
            } else {
                Del::Done(old)
            }
        }
    }
}

fn leaf_delete(mem: &GlobalMemory, leaf: NodeRef, key: u64) -> Del {
    let c = leaf.count(mem);
    let Some(slot) = (0..c).find(|&i| leaf.key(mem, i) == key) else {
        return Del::NotFound;
    };
    let old = leaf.val(mem, slot);
    for i in slot..c - 1 {
        leaf.set_key(mem, i, leaf.key(mem, i + 1));
        leaf.set_val(mem, i, leaf.val(mem, i + 1));
    }
    leaf.set_key(mem, c - 1, u64::MAX);
    leaf.set_count(mem, c - 1);
    if c - 1 < MIN_OCCUPANCY {
        Del::Underflow(old)
    } else {
        Del::Done(old)
    }
}

/// Restores the occupancy of `parent`'s child at `slot`: borrow one entry
/// from the sibling that can spare it, else merge right-into-left. A
/// parent with a single child (only possible near the root, which is
/// exempt) leaves the child as-is.
fn fix_underflow(mem: &GlobalMemory, parent: NodeRef, slot: usize) {
    let pc = parent.count(mem);
    let child = NodeRef {
        addr: parent.val(mem, slot),
    };
    let right = (slot + 1 < pc).then(|| NodeRef {
        addr: parent.val(mem, slot + 1),
    });
    let left = (slot > 0).then(|| NodeRef {
        addr: parent.val(mem, slot - 1),
    });
    if let Some(r) = right {
        if r.count(mem) > MIN_OCCUPANCY {
            return borrow_from_right(mem, parent, slot, child, r);
        }
    }
    if let Some(l) = left {
        if l.count(mem) > MIN_OCCUPANCY {
            return borrow_from_left(mem, parent, slot, l, child);
        }
    }
    if let Some(r) = right {
        merge_into_left(mem, parent, slot + 1, child, r);
    } else if let Some(l) = left {
        merge_into_left(mem, parent, slot, l, child);
    }
    // No sibling: single-child parent, nothing to rebalance against.
}

/// Moves `right`'s first entry to `child`'s end and re-fences.
fn borrow_from_right(
    mem: &GlobalMemory,
    parent: NodeRef,
    slot: usize,
    child: NodeRef,
    right: NodeRef,
) {
    let rc = right.count(mem);
    let cc = child.count(mem);
    child.set_key(mem, cc, right.key(mem, 0));
    child.set_val(mem, cc, right.val(mem, 0));
    child.set_count(mem, cc + 1);
    for i in 0..rc - 1 {
        right.set_key(mem, i, right.key(mem, i + 1));
        right.set_val(mem, i, right.val(mem, i + 1));
    }
    right.set_key(mem, rc - 1, u64::MAX);
    right.set_count(mem, rc - 1);
    // The boundary between the two siblings moved up to right's new
    // minimum: parent fence, right's low, and child's high all track it.
    let fence = right.key(mem, 0);
    parent.set_key(mem, slot + 1, fence);
    right.set_low(mem, fence);
    child.set_high(mem, fence);
    child.bump_version(mem);
    right.bump_version(mem);
}

/// Moves `left`'s last entry to `child`'s front and re-fences.
fn borrow_from_left(
    mem: &GlobalMemory,
    parent: NodeRef,
    slot: usize,
    left: NodeRef,
    child: NodeRef,
) {
    let lc = left.count(mem);
    let cc = child.count(mem);
    let (k, v) = (left.key(mem, lc - 1), left.val(mem, lc - 1));
    let mut i = cc;
    while i > 0 {
        child.set_key(mem, i, child.key(mem, i - 1));
        child.set_val(mem, i, child.val(mem, i - 1));
        i -= 1;
    }
    child.set_key(mem, 0, k);
    child.set_val(mem, 0, v);
    child.set_count(mem, cc + 1);
    left.set_key(mem, lc - 1, u64::MAX);
    left.set_count(mem, lc - 1);
    // The boundary moved down to the borrowed key.
    parent.set_key(mem, slot, k);
    child.set_low(mem, k);
    left.set_high(mem, k);
    child.bump_version(mem);
    left.bump_version(mem);
}

/// Merges `right` (the parent entry at `right_slot`) into `left`, its
/// chain predecessor. `left` absorbs the entries and the key range;
/// `right` is tombstoned and retired — its NEXT/HIGH stay readable for
/// same-epoch stale readers until the arena recycles it.
fn merge_into_left(
    mem: &GlobalMemory,
    parent: NodeRef,
    right_slot: usize,
    left: NodeRef,
    right: NodeRef,
) {
    let lc = left.count(mem);
    let rc = right.count(mem);
    debug_assert!(lc + rc <= FANOUT, "merge would overflow");
    debug_assert_eq!(left.is_leaf(mem), right.is_leaf(mem));
    for i in 0..rc {
        left.set_key(mem, lc + i, right.key(mem, i));
        left.set_val(mem, lc + i, right.val(mem, i));
    }
    left.set_count(mem, lc + rc);
    left.set_next(mem, right.next(mem));
    left.set_high(mem, right.high(mem));
    left.bump_version(mem);
    // Remove the parent's entry for the absorbed node.
    let pc = parent.count(mem);
    for i in right_slot..pc - 1 {
        parent.set_key(mem, i, parent.key(mem, i + 1));
        parent.set_val(mem, i, parent.val(mem, i + 1));
    }
    parent.set_key(mem, pc - 1, u64::MAX);
    parent.set_count(mem, pc - 1);
    // Tombstone, then quarantine: an optimistic reader that raced here
    // sees META_DEAD and restarts; the block is recycled only after the
    // next epoch advance.
    mem.fetch_or(right.addr + OFF_META, META_DEAD);
    right.bump_version(mem);
    right.retire(mem);
}

/// Collapses single-child inner roots, shrinking the recorded height.
/// The promoted child already spans the full key range (low 0 after the
/// leftmost clamp, high unbounded as the rightmost), so no re-fencing is
/// needed.
fn collapse_root(mem: &GlobalMemory, tree: &TreeHandle) {
    loop {
        let root = NodeRef {
            addr: tree.root(mem),
        };
        if root.is_leaf(mem) || root.count(mem) != 1 {
            return;
        }
        let child = NodeRef {
            addr: root.val(mem, 0),
        };
        let height = tree.height(mem);
        tree.set_root(mem, child.addr, height - 1);
        mem.fetch_or(root.addr + OFF_META, META_DEAD);
        root.bump_version(mem);
        root.retire(mem);
    }
}

/// Returns the values of keys in `[lo, lo + len - 1]`, one optional slot
/// per key offset.
pub fn range(mem: &GlobalMemory, tree: &TreeHandle, lo: u64, len: u32) -> Vec<Option<u64>> {
    let hi = lo.saturating_add(len as u64 - 1);
    let mut out = vec![None; len as usize];
    let mut node = NodeRef {
        addr: tree.root(mem),
    };
    while !node.is_leaf(mem) {
        node = NodeRef {
            addr: node.val(mem, child_slot(mem, node, lo)),
        };
    }
    loop {
        let c = node.count(mem);
        for i in 0..c {
            let k = node.key(mem, i);
            if k >= lo && k <= hi {
                out[(k - lo) as usize] = Some(node.val(mem, i));
            }
        }
        if c > 0 && node.key(mem, c - 1) >= hi {
            break;
        }
        let next = node.next(mem);
        if next == 0 {
            break;
        }
        node = NodeRef { addr: next };
    }
    out
}

/// Walks the leaf chain and returns every (key, value) pair in order.
pub fn contents(mem: &GlobalMemory, tree: &TreeHandle) -> Vec<(u64, u64)> {
    let mut node = NodeRef {
        addr: tree.root(mem),
    };
    while !node.is_leaf(mem) {
        node = NodeRef {
            addr: node.val(mem, 0),
        };
    }
    let mut out = Vec::new();
    loop {
        for i in 0..node.count(mem) {
            out.push((node.key(mem, i), node.val(mem, i)));
        }
        let next = node.next(mem);
        if next == 0 {
            break;
        }
        node = NodeRef { addr: next };
    }
    out
}

/// Inner-node descent slot (host-side twin of `ParsedNode::child_slot`).
pub fn child_slot(mem: &GlobalMemory, node: NodeRef, key: u64) -> usize {
    let c = node.count(mem);
    debug_assert!(c > 0);
    let mut slot = 0;
    for i in 0..c {
        if node.key(mem, i) <= key {
            slot = i;
        } else {
            break;
        }
    }
    slot
}

fn first_key_bound(mem: &GlobalMemory, node: NodeRef) -> u64 {
    // Fence for the left half after a root split: its first stored key
    // (fences only need to lower-bound the subtree for search to work;
    // the leftmost path is clamped).
    node.key(mem, 0)
}

fn insert_rec(mem: &GlobalMemory, node: NodeRef, key: u64, val: u64) -> Ins {
    if node.is_leaf(mem) {
        return leaf_insert(mem, node, key, val);
    }
    let slot = child_slot(mem, node, key);
    let child = NodeRef {
        addr: node.val(mem, slot),
    };
    match insert_rec(mem, child, key, val) {
        Ins::Done(old) => Ins::Done(old),
        Ins::Split(fence, right, old) => {
            // Clamp case: along the leftmost spine a child can hold keys
            // below its recorded fence; its split fence may then undercut
            // the parent entry. Lower the stale fence to the child's true
            // lower bound before inserting, or key order would break.
            if fence < node.key(mem, slot) {
                debug_assert_eq!(slot, 0, "only the clamped slot can undercut");
                node.set_key(mem, slot, child.low(mem));
            }
            let c = node.count(mem);
            if c < FANOUT {
                entry_insert(mem, node, slot + 1, fence, right);
                Ins::Done(old)
            } else {
                let (rnode, rfence) = split_inner(mem, node);
                // Insert the new fence into the correct half.
                if fence >= rfence {
                    let rslot = child_slot(mem, rnode, fence);
                    entry_insert(mem, rnode, rslot + 1, fence, right);
                } else {
                    entry_insert(mem, node, slot + 1, fence, right);
                }
                Ins::Split(rfence, rnode.addr, old)
            }
        }
    }
}

fn leaf_insert(mem: &GlobalMemory, leaf: NodeRef, key: u64, val: u64) -> Ins {
    let c = leaf.count(mem);
    for i in 0..c {
        if leaf.key(mem, i) == key {
            let old = leaf.val(mem, i);
            leaf.set_val(mem, i, val);
            return Ins::Done(Some(old));
        }
    }
    if c < FANOUT {
        let slot = (0..c).take_while(|&i| leaf.key(mem, i) < key).count();
        entry_insert(mem, leaf, slot, key, val);
        return Ins::Done(None);
    }
    // Split the leaf, then insert into the proper half.
    let (right, rfence) = split_leaf(mem, leaf);
    let target = if key >= rfence { right } else { leaf };
    let tc = target.count(mem);
    let slot = (0..tc).take_while(|&i| target.key(mem, i) < key).count();
    entry_insert(mem, target, slot, key, val);
    Ins::Split(rfence, right.addr, None)
}

/// Inserts (key, val) at `slot`, shifting later entries right. The node
/// must have spare capacity.
fn entry_insert(mem: &GlobalMemory, node: NodeRef, slot: usize, key: u64, val: u64) {
    let c = node.count(mem);
    debug_assert!(c < FANOUT && slot <= c);
    let mut i = c;
    while i > slot {
        node.set_key(mem, i, node.key(mem, i - 1));
        node.set_val(mem, i, node.val(mem, i - 1));
        i -= 1;
    }
    node.set_key(mem, slot, key);
    node.set_val(mem, slot, val);
    node.set_count(mem, c + 1);
}

/// Splits a full leaf: upper half moves to a new right sibling, versions
/// bump (the validation signal of §4.2), chain links update. Returns the
/// new node and its fence key.
pub fn split_leaf(mem: &GlobalMemory, leaf: NodeRef) -> (NodeRef, u64) {
    split_node(mem, leaf, true)
}

/// Splits a full inner node analogously.
pub fn split_inner(mem: &GlobalMemory, node: NodeRef) -> (NodeRef, u64) {
    split_node(mem, node, false)
}

fn split_node(mem: &GlobalMemory, node: NodeRef, leaf: bool) -> (NodeRef, u64) {
    let c = node.count(mem);
    debug_assert_eq!(c, FANOUT, "only full nodes split");
    let half = c / 2;
    let right = NodeRef::alloc(mem, leaf);
    for i in half..c {
        right.set_key(mem, i - half, node.key(mem, i));
        right.set_val(mem, i - half, node.val(mem, i));
        node.set_key(mem, i, u64::MAX);
    }
    right.set_count(mem, c - half);
    node.set_count(mem, half);
    right.set_next(mem, node.next(mem));
    right.set_rf(mem, node.rf(mem));
    right.set_high(mem, node.high(mem));
    right.set_low(mem, right.key(mem, 0));
    node.set_next(mem, right.addr);
    node.set_high(mem, right.key(mem, 0));
    node.bump_version(mem);
    (right, right.key(mem, 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{arena_budget, bulk_build};
    use crate::validate::validate;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn tree_with(n: u64) -> (GlobalMemory, TreeHandle) {
        let mem = GlobalMemory::new(arena_budget(n as usize, 4 * n as usize + 64));
        let pairs: Vec<(u64, u64)> = (1..=n).map(|i| (2 * i, 2 * i + 1)).collect();
        let t = bulk_build(&mem, &pairs);
        (mem, t)
    }

    #[test]
    fn get_finds_loaded_keys() {
        let (mem, t) = tree_with(1000);
        assert_eq!(get(&mem, &t, 2), Some(3));
        assert_eq!(get(&mem, &t, 1000), Some(1001));
        assert_eq!(get(&mem, &t, 2000), Some(2001));
        assert_eq!(get(&mem, &t, 3), None);
        assert_eq!(get(&mem, &t, 99_999), None);
    }

    #[test]
    fn upsert_updates_in_place() {
        let (mem, t) = tree_with(100);
        assert_eq!(upsert(&mem, &t, 10, 555), Some(11));
        assert_eq!(get(&mem, &t, 10), Some(555));
    }

    #[test]
    fn upsert_inserts_new_keys_with_splits() {
        let (mem, t) = tree_with(100);
        // Insert all the odd keys — forces many leaf splits.
        for i in 0..100u64 {
            assert_eq!(upsert(&mem, &t, 2 * i + 1, i), None);
        }
        for i in 0..100u64 {
            assert_eq!(get(&mem, &t, 2 * i + 1), Some(i));
        }
        // Originals still present.
        for i in 1..=100u64 {
            assert_eq!(get(&mem, &t, 2 * i), Some(2 * i + 1));
        }
        validate(&mem, &t).unwrap();
    }

    #[test]
    fn insert_below_global_minimum() {
        let (mem, t) = tree_with(500);
        assert_eq!(upsert(&mem, &t, 1, 42), None);
        assert_eq!(get(&mem, &t, 1), Some(42));
        validate(&mem, &t).unwrap();
    }

    #[test]
    fn delete_removes_and_returns_old() {
        let (mem, t) = tree_with(200);
        assert_eq!(delete(&mem, &t, 50), Some(51));
        assert_eq!(get(&mem, &t, 50), None);
        assert_eq!(delete(&mem, &t, 50), None);
        validate(&mem, &t).unwrap();
    }

    #[test]
    fn delete_then_reinsert() {
        let (mem, t) = tree_with(50);
        delete(&mem, &t, 20).unwrap();
        assert_eq!(upsert(&mem, &t, 20, 7), None);
        assert_eq!(get(&mem, &t, 20), Some(7));
    }

    #[test]
    fn range_collects_per_offset() {
        let (mem, t) = tree_with(100);
        // Keys 10..=13: 10 and 12 exist.
        let r = range(&mem, &t, 10, 4);
        assert_eq!(r, vec![Some(11), None, Some(13), None]);
    }

    #[test]
    fn range_spanning_many_leaves() {
        let (mem, t) = tree_with(1000);
        let r = range(&mem, &t, 2, 100);
        for off in 0..100u64 {
            let k = 2 + off;
            let expect = if k % 2 == 0 { Some(k + 1) } else { None };
            assert_eq!(r[off as usize], expect, "key {k}");
        }
    }

    #[test]
    fn contents_match_inserted_set() {
        let (mem, t) = tree_with(300);
        upsert(&mem, &t, 7, 70);
        delete(&mem, &t, 4);
        let c = contents(&mem, &t);
        assert_eq!(c.len(), 300);
        assert!(c.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(c.contains(&(7, 70)));
        assert!(!c.iter().any(|&(k, _)| k == 4));
    }

    #[test]
    fn split_bumps_version() {
        let (mem, t) = tree_with(100);
        let mut node = NodeRef { addr: t.root(&mem) };
        while !node.is_leaf(&mem) {
            node = NodeRef {
                addr: node.val(&mem, 0),
            };
        }
        let v0 = node.version(&mem);
        // Fill this leaf until it splits: insert odd keys just above its
        // min until the version changes.
        let base = node.min_key(&mem);
        for d in 0..10u64 {
            upsert(&mem, &t, base + 2 * d + 1, 0);
        }
        assert!(node.version(&mem) > v0, "leaf split must bump version");
    }

    #[test]
    fn randomized_against_btreemap() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        let (mem, t) = tree_with(500);
        let mut model: std::collections::BTreeMap<u64, u64> =
            (1..=500u64).map(|i| (2 * i, 2 * i + 1)).collect();
        let mut keys: Vec<u64> = (1..=1000).collect();
        keys.shuffle(&mut rng);
        for (step, &k) in keys.iter().enumerate() {
            match step % 3 {
                0 => {
                    let v = rng.gen::<u32>() as u64;
                    assert_eq!(upsert(&mem, &t, k, v), model.insert(k, v), "upsert {k}");
                }
                1 => {
                    assert_eq!(delete(&mem, &t, k), model.remove(&k), "delete {k}");
                }
                _ => {
                    assert_eq!(get(&mem, &t, k), model.get(&k).copied(), "get {k}");
                }
            }
        }
        let c = contents(&mem, &t);
        let m: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(c, m);
        validate(&mem, &t).unwrap();
    }
}
