//! Host-side bulk build of the tree and the tree handle.

use crate::node::{build_fill_for, NodeRef, BUILD_FILL, MIN_OCCUPANCY};
use eirene_sim::{Addr, GlobalMemory};

/// Handle to a tree living in device memory. Only two words of state: the
/// current root address and the height, both in the arena so device code
/// can read them (the root changes when a root split occurs).
#[derive(Clone, Copy, Debug)]
pub struct TreeHandle {
    /// Arena word holding the root node address.
    pub root_word: Addr,
    /// Arena word holding the height (number of levels; 1 = root is leaf).
    pub height_word: Addr,
}

impl TreeHandle {
    pub fn root(&self, mem: &GlobalMemory) -> Addr {
        mem.read(self.root_word)
    }

    pub fn height(&self, mem: &GlobalMemory) -> u64 {
        mem.read(self.height_word)
    }

    pub fn set_root(&self, mem: &GlobalMemory, root: Addr, height: u64) {
        mem.write(self.root_word, root);
        mem.write(self.height_word, height);
    }

    /// CAS the root (used by device-side root splits). Returns whether the
    /// installation succeeded.
    pub fn cas_root(&self, mem: &GlobalMemory, old: Addr, new: Addr) -> bool {
        if mem.cas(self.root_word, old, new).is_ok() {
            mem.fetch_add(self.height_word, 1);
            true
        } else {
            false
        }
    }
}

/// Bulk-builds a B+tree from key/value pairs sorted by key (strictly
/// ascending). Returns the handle.
///
/// Leaves are filled to [`BUILD_FILL`] of [`FANOUT`](crate::FANOUT)
/// entries (75%), leaving headroom for inserts, and linked through their
/// `NEXT` fields. Upper levels are built the same way over
/// `(min key, child)` fence entries. Finally the RF (range field) of each
/// leaf is initialized per §5: leaf `i`'s RF is the minimal key of leaf
/// `i + height + 1` (the first leaf for which a horizontal walk from leaf
/// `i` costs more than a vertical descent), or `u64::MAX` if there is no
/// such leaf.
///
/// # Panics
/// Panics if `pairs` is empty or not strictly ascending by key.
pub fn bulk_build(mem: &GlobalMemory, pairs: &[(u64, u64)]) -> TreeHandle {
    assert!(!pairs.is_empty(), "cannot build an empty tree");
    assert!(
        pairs.windows(2).all(|w| w[0].0 < w[1].0),
        "bulk_build requires strictly ascending keys"
    );

    // Level 0: leaves (staggered fill; see `build_fill_for`).
    let mut leaves: Vec<NodeRef> = Vec::new();
    let mut entries: Vec<(u64, Addr)> = Vec::new(); // fences for next level
    for chunk in StaggeredChunks::new(pairs) {
        let leaf = NodeRef::alloc(mem, true);
        for (i, &(k, v)) in chunk.iter().enumerate() {
            leaf.set_key(mem, i, k);
            leaf.set_val(mem, i, v);
        }
        leaf.set_count(mem, chunk.len());
        leaf.set_low(mem, if leaves.is_empty() { 0 } else { chunk[0].0 });
        if let Some(prev) = leaves.last() {
            prev.set_next(mem, leaf.addr);
            prev.set_high(mem, chunk[0].0);
        }
        entries.push((chunk[0].0, leaf.addr));
        leaves.push(leaf);
    }

    // Upper levels.
    let mut height = 1u64;
    while entries.len() > 1 {
        let mut next_entries = Vec::with_capacity(entries.len().div_ceil(BUILD_FILL));
        let mut prev: Option<NodeRef> = None;
        for chunk in StaggeredChunks::new(&entries) {
            let inner = NodeRef::alloc(mem, false);
            for (i, &(k, child)) in chunk.iter().enumerate() {
                inner.set_key(mem, i, k);
                inner.set_val(mem, i, child);
            }
            inner.set_count(mem, chunk.len());
            inner.set_low(mem, if prev.is_none() { 0 } else { chunk[0].0 });
            if let Some(p) = prev {
                p.set_next(mem, inner.addr);
                p.set_high(mem, chunk[0].0);
            }
            prev = Some(inner);
            next_entries.push((chunk[0].0, inner.addr));
        }
        entries = next_entries;
        height += 1;
    }

    // Initialize leaf RF values.
    let skip = (height + 1) as usize;
    for i in 0..leaves.len() {
        let rf = if i + skip < leaves.len() {
            leaves[i + skip].min_key(mem)
        } else {
            u64::MAX
        };
        leaves[i].set_rf(mem, rf);
    }

    let root_word = mem.alloc(2);
    let handle = TreeHandle {
        root_word,
        height_word: root_word + 1,
    };
    handle.set_root(mem, entries[0].1, height);
    handle
}

/// Iterator over slices of staggered [`build_fill_for`] lengths.
struct StaggeredChunks<'a, T> {
    rest: &'a [T],
    idx: usize,
}

impl<'a, T> StaggeredChunks<'a, T> {
    fn new(items: &'a [T]) -> Self {
        StaggeredChunks {
            rest: items,
            idx: 0,
        }
    }
}

impl<'a, T> Iterator for StaggeredChunks<'a, T> {
    type Item = &'a [T];

    fn next(&mut self) -> Option<&'a [T]> {
        if self.rest.is_empty() {
            return None;
        }
        let mut take = build_fill_for(self.idx).min(self.rest.len());
        // Never strand a runt: if taking the staggered fill would leave a
        // tail below MIN_OCCUPANCY, split the remainder evenly instead —
        // both halves land in [5, 9], inside the rebalancing floor and
        // the insert-headroom ceiling. (A whole level smaller than the
        // floor is fine: it becomes the root, which is exempt.)
        let rem = self.rest.len() - take;
        if rem > 0 && rem < MIN_OCCUPANCY {
            take = self.rest.len() / 2;
        }
        self.idx += 1;
        let (chunk, rest) = self.rest.split_at(take);
        self.rest = rest;
        Some(chunk)
    }
}

/// Arena words needed to hold a tree of `n` pairs built by [`bulk_build`],
/// plus `extra_nodes` headroom for splits. Used to size devices.
pub fn arena_budget(n: usize, extra_nodes: usize) -> usize {
    // Stride is 48 words per node once 16-word alignment is included.
    let stride = 48;
    let mut nodes = 0usize;
    // Minimum staggered fill is 10, so divide by 10 for a safe bound.
    let min_fill = BUILD_FILL - 2;
    let mut level = n.div_ceil(min_fill).max(1);
    loop {
        nodes += level;
        if level == 1 {
            break;
        }
        level = level.div_ceil(min_fill);
    }
    (nodes + extra_nodes) * stride + 4096
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::FANOUT;

    fn pairs(n: u64) -> Vec<(u64, u64)> {
        (1..=n).map(|i| (2 * i, 2 * i + 1)).collect()
    }

    #[test]
    fn single_leaf_tree() {
        let mem = GlobalMemory::new(1 << 12);
        let h = bulk_build(&mem, &pairs(5));
        assert_eq!(h.height(&mem), 1);
        let root = NodeRef { addr: h.root(&mem) };
        assert!(root.is_leaf(&mem));
        assert_eq!(root.count(&mem), 5);
        assert_eq!(root.key(&mem, 0), 2);
        assert_eq!(root.val(&mem, 0), 3);
    }

    #[test]
    fn two_level_tree() {
        let mem = GlobalMemory::new(1 << 14);
        let h = bulk_build(&mem, &pairs(100));
        assert_eq!(h.height(&mem), 2);
        let root = NodeRef { addr: h.root(&mem) };
        assert!(!root.is_leaf(&mem));
        // Fences in the root are the min keys of the leaves.
        let c0 = NodeRef {
            addr: root.val(&mem, 0),
        };
        assert_eq!(root.key(&mem, 0), c0.min_key(&mem));
    }

    #[test]
    fn leaves_are_linked_in_order() {
        let mem = GlobalMemory::new(1 << 16);
        let h = bulk_build(&mem, &pairs(500));
        // Descend to leftmost leaf.
        let mut node = NodeRef { addr: h.root(&mem) };
        while !node.is_leaf(&mem) {
            node = NodeRef {
                addr: node.val(&mem, 0),
            };
        }
        let mut seen = 0;
        let mut last_key = 0;
        loop {
            for i in 0..node.count(&mem) {
                let k = node.key(&mem, i);
                assert!(k > last_key);
                last_key = k;
                seen += 1;
            }
            let next = node.next(&mem);
            if next == 0 {
                break;
            }
            node = NodeRef { addr: next };
        }
        assert_eq!(seen, 500);
    }

    #[test]
    fn build_fill_leaves_insert_headroom() {
        let mem = GlobalMemory::new(1 << 16);
        let h = bulk_build(&mem, &pairs(300));
        let mut node = NodeRef { addr: h.root(&mem) };
        while !node.is_leaf(&mem) {
            node = NodeRef {
                addr: node.val(&mem, 0),
            };
        }
        let mut counts = Vec::new();
        loop {
            assert!(node.count(&mem) <= BUILD_FILL + 2);
            assert!(
                node.count(&mem) < FANOUT,
                "every leaf keeps insert headroom"
            );
            counts.push(node.count(&mem));
            let next = node.next(&mem);
            if next == 0 {
                break;
            }
            node = NodeRef { addr: next };
        }
        // Fill must actually be staggered, not uniform.
        let distinct: std::collections::HashSet<_> = counts[..counts.len() - 1].iter().collect();
        assert!(
            distinct.len() >= 3,
            "staggered fill expected, got {counts:?}"
        );
    }

    #[test]
    fn rf_points_height_plus_one_leaves_ahead() {
        let mem = GlobalMemory::new(1 << 16);
        let h = bulk_build(&mem, &pairs(300));
        let height = h.height(&mem) as usize;
        // Collect leaves.
        let mut node = NodeRef { addr: h.root(&mem) };
        while !node.is_leaf(&mem) {
            node = NodeRef {
                addr: node.val(&mem, 0),
            };
        }
        let mut leaves = vec![node];
        while leaves.last().unwrap().next(&mem) != 0 {
            leaves.push(NodeRef {
                addr: leaves.last().unwrap().next(&mem),
            });
        }
        for (i, leaf) in leaves.iter().enumerate() {
            let expect = if i + height + 1 < leaves.len() {
                leaves[i + height + 1].min_key(&mem)
            } else {
                u64::MAX
            };
            assert_eq!(leaf.rf(&mem), expect, "leaf {i}");
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted_input() {
        let mem = GlobalMemory::new(1 << 12);
        bulk_build(&mem, &[(3, 0), (2, 0)]);
    }

    #[test]
    fn arena_budget_is_sufficient() {
        let n = 10_000;
        let mem = GlobalMemory::new(arena_budget(n, 64));
        let h = bulk_build(&mem, &pairs(n as u64));
        assert!(h.height(&mem) >= 4);
    }

    #[test]
    fn cas_root_installs_once() {
        let mem = GlobalMemory::new(1 << 12);
        let h = bulk_build(&mem, &pairs(5));
        let old = h.root(&mem);
        assert!(h.cas_root(&mem, old, 0xAB0));
        assert!(!h.cas_root(&mem, old, 0xAB8), "stale CAS must fail");
        assert_eq!(h.root(&mem), 0xAB0);
        assert_eq!(h.height(&mem), 2);
    }
}
