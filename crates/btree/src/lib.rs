//! B+tree substrate on the device arena.
//!
//! The tree layout shared by Eirene and both baselines (the paper's trees
//! differ in *concurrency control*, not in structure): a regular B+tree
//! whose inner nodes hold keys and child pointers and whose leaves hold
//! keys and values plus a right-sibling link, entirely resident in device
//! global memory (§7).
//!
//! This crate provides:
//! * the node layout and typed accessors ([`node`]);
//! * host-side bulk build from sorted pairs, including the RF (range
//!   field) initialization required by locality-aware warp reorganization
//!   (§5);
//! * uninstrumented reference operations (get/insert/delete/range) used by
//!   tests and by the bulk loader;
//! * structural validation ([`validate`]) asserting the B+tree invariants
//!   (sorted keys, consistent child separators, balanced height, linked
//!   leaves, occupancy bounds).

pub mod build;
pub mod node;
pub mod refops;
pub mod txops;
pub mod validate;

pub use build::{bulk_build, TreeHandle};
pub use node::{NodeRef, FANOUT, NODE_WORDS};
