//! Property: executing a batch with leaf-run coalescing (sorted-plan
//! leaf runs dispatched through the snapshot pivot cache) is
//! indistinguishable from the unpartitioned per-request execution — the
//! per-ticket responses are identical position by position, the final
//! key/value contents of the tree are identical, and both trees pass the
//! structural validator. Coalescing regroups *who walks*, never *what is
//! applied in which timestamp order*; this test pins that claim across
//! randomized duplicate-key, colliding-timestamp, mixed-operation
//! batches, including multi-batch sequences that force pivot-cache
//! invalidation between epochs.

use eirene_baselines::common::ConcurrentTree;
use eirene_btree::refops;
use eirene_btree::validate::validate;
use eirene_core::{EireneOptions, EireneTree};
use eirene_sim::DeviceConfig;
use eirene_workloads::{Batch, OpKind, Request};
use proptest::prelude::*;

const DOMAIN: u32 = 2048;

fn build(coalesce: bool) -> EireneTree {
    let pairs: Vec<(u64, u64)> = (1..=512u64).map(|k| (k, k + 1)).collect();
    EireneTree::new(
        &pairs,
        EireneOptions {
            device: DeviceConfig::test_small(),
            headroom_nodes: 1 << 12,
            coalesce,
            ..Default::default()
        },
    )
}

/// One raw request: key, operation selector, upsert value, range length,
/// timestamp (small domain so timestamps collide and the batch-position
/// tie-break carries weight).
type RawReq = (u32, u8, u32, u32, u64);

fn request_strategy() -> impl Strategy<Value = RawReq> {
    // The workspace proptest shim implements Strategy for tuples of at
    // most four elements, so nest and flatten.
    ((0..=DOMAIN, 0..10u8), (any::<u32>(), 1..=48u32, 0..48u64))
        .prop_map(|((key, sel), (val, len, ts))| (key, sel, val, len, ts))
}

fn to_request(raw: &RawReq) -> Request {
    let &(key, sel, val, len, ts) = raw;
    let op = match sel {
        0..=3 => OpKind::Upsert(val),
        4 => OpKind::Delete,
        5 => OpKind::Range { len },
        _ => OpKind::Query,
    };
    Request { key, op, ts }
}

/// Runs `batches` on a fresh tree pair and asserts the coalesced and
/// unpartitioned executions are indistinguishable after every batch.
fn assert_equivalent(batches: &[Vec<RawReq>]) -> Result<(), TestCaseError> {
    let mut on = build(true);
    let mut off = build(false);
    for (b, raw) in batches.iter().enumerate() {
        let batch = Batch::new(raw.iter().map(to_request).collect());
        let run_on = on.run_batch(&batch);
        let run_off = off.run_batch(&batch);
        for i in 0..batch.len() {
            prop_assert_eq!(
                &run_on.responses[i],
                &run_off.responses[i],
                "batch {} response {} diverges for {:?}",
                b,
                i,
                batch.requests[i]
            );
        }
        let c_on = refops::contents(on.device().mem(), on.handle());
        let c_off = refops::contents(off.device().mem(), off.handle());
        prop_assert_eq!(c_on, c_off, "batch {}: final contents diverge", b);
        prop_assert!(validate(on.device().mem(), on.handle()).is_ok());
        prop_assert!(validate(off.device().mem(), off.handle()).is_ok());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single adversarial batch: duplicate keys, colliding timestamps,
    /// ranges, deletes — coalesced == unpartitioned.
    #[test]
    fn prop_coalesced_batch_equals_unpartitioned(
        raw in proptest::collection::vec(request_strategy(), 1..160),
    ) {
        assert_equivalent(&[raw])?;
    }

    /// Two consecutive batches against the SAME tree pair: the first
    /// builds the coalesced tree's pivot cache; when it splits nodes the
    /// snapshot is invalidated and the second batch rebuilds — the
    /// equivalence must hold across that boundary too.
    #[test]
    fn prop_equivalence_survives_cache_invalidation(
        first in proptest::collection::vec(request_strategy(), 32..96),
        second in proptest::collection::vec(request_strategy(), 32..96),
    ) {
        assert_equivalent(&[first, second])?;
    }
}

/// Deterministic pin of the machinery: a duplicate-heavy batch on the
/// coalesced tree must actually save descents and hit the cache, and the
/// unpartitioned tree must report zero for both.
#[test]
fn coalesced_counters_fire_and_baseline_stays_flat() {
    let mut on = build(true);
    let mut off = build(false);
    let reqs: Vec<Request> = (0..256)
        .map(|i| Request {
            key: (i % 16) * 8 + 1,
            op: if i % 3 == 0 {
                OpKind::Upsert(i)
            } else {
                OpKind::Query
            },
            ts: i as u64,
        })
        .collect();
    let batch = Batch::new(reqs);
    let run_on = on.run_batch(&batch);
    let run_off = off.run_batch(&batch);
    assert_eq!(run_on.responses, run_off.responses);
    assert!(run_on.stats.totals.pivot_cache_rebuilds >= 1);
    assert!(run_on.stats.totals.pivot_cache_hits > 0);
    assert!(run_on.stats.totals.descents_saved > 0);
    assert_eq!(run_off.stats.totals.pivot_cache_hits, 0);
    assert_eq!(run_off.stats.totals.descents_saved, 0);
    assert_eq!(run_off.stats.totals.pivot_cache_rebuilds, 0);
}
