//! Combining-based synchronization: sort, run detection, issued-request
//! selection, and artificial-query generation (§4.1).

use eirene_primitives::{radix_sort_pairs, PrimCost};
use eirene_sim::DeviceConfig;
use eirene_workloads::{Batch, Key, OpKind, Value};

/// The request issued to the tree on behalf of a whole run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IssuedKind {
    /// All requests in the run are queries: one query is issued and its
    /// result is shared.
    Query,
    /// The run's last state-changing operation is an update: it is issued
    /// and retrieves the old value.
    Upsert(Value),
    /// The run's last state-changing operation is a delete.
    Delete,
}

/// One issued request (exactly one per distinct point-request key).
#[derive(Clone, Copy, Debug)]
pub struct Issued {
    pub key: Key,
    pub kind: IssuedKind,
    /// Index of the run this request represents.
    pub run: u32,
}

/// A run: all point requests on one key, in timestamp order.
#[derive(Clone, Copy, Debug)]
pub struct Run {
    pub key: Key,
    /// Start offset into [`CombinePlan::point_sorted`].
    pub start: u32,
    /// Number of point requests in the run.
    pub len: u32,
    /// Whether the run contains any upsert/delete.
    pub has_state_ops: bool,
}

/// A range query, sorted into the batch by its lower bound.
#[derive(Clone, Copy, Debug)]
pub struct RangeReq {
    /// Position of the request in the original batch.
    pub orig_idx: u32,
    pub lo: Key,
    pub len: u32,
    pub ts: u64,
}

/// An artificial query (§4.1.2): "key `run.key` as of timestamp `ts`",
/// generated because a range query covers a key that has updates in the
/// batch. Its resolved value patches slot `offset` of range `range_idx`.
#[derive(Clone, Copy, Debug)]
pub struct Artificial {
    pub range_idx: u32,
    pub offset: u32,
    pub ts: u64,
    /// Timestamp *rank* of the originating range request — the position of
    /// `(ts, batch index)` in the batch's total order. Result calculation
    /// orders an artificial query against a point request by rank, so two
    /// requests sharing a raw timestamp resolve in batch order, matching
    /// the oracle's stable sort.
    pub rank: u32,
}

/// Output of the combining phase.
#[derive(Clone, Debug)]
pub struct CombinePlan {
    /// Indices of point requests (original batch positions) sorted by
    /// (key, timestamp). Runs are contiguous slices of this array.
    pub point_sorted: Vec<u32>,
    pub runs: Vec<Run>,
    /// One issued request per run, in ascending key order.
    pub issued: Vec<Issued>,
    /// Range queries in ascending lower-bound order.
    pub ranges: Vec<RangeReq>,
    /// Artificial queries per run, each list sorted by timestamp rank.
    pub run_art: Vec<Vec<Artificial>>,
    /// Timestamp rank per original batch position: the index of
    /// `(ts, batch position)` in the batch's sorted total order. Breaks
    /// equal-timestamp ties exactly as the sequential oracle's stable sort
    /// does.
    pub rank: Vec<u32>,
    /// Modelled device cost of sorting + combining + artificial-query
    /// generation.
    pub cost: PrimCost,
}

impl CombinePlan {
    /// Total number of artificial queries generated.
    pub fn artificial_count(&self) -> usize {
        self.run_art.iter().map(|v| v.len()).sum()
    }

    /// Number of issued update-kernel requests.
    pub fn issued_updates(&self) -> usize {
        self.issued
            .iter()
            .filter(|i| !matches!(i.kind, IssuedKind::Query))
            .count()
    }

    /// Requests whose tree traversal was eliminated by combining (unissued
    /// point requests).
    pub fn combined_away(&self) -> usize {
        self.point_sorted.len() - self.issued.len()
    }
}

/// Builds the combining plan for a batch (§4.1, §4.1.2).
///
/// Sorting uses the radix-sort device primitive over composite
/// `(key << 32) | timestamp-rank` keys, exactly as the implementation
/// sorts with CUB (§7); the sort's modelled cost — and the combining
/// scans' — are part of the returned plan, because the paper charges them
/// to Eirene in every measurement (§8.1).
pub fn build_plan(batch: &Batch, cfg: &DeviceConfig) -> CombinePlan {
    let n = batch.len();
    assert!(n < (1 << 32), "batch too large for 32-bit timestamp ranks");

    // Logical-timestamp ranks: requests may carry arbitrary (unique) ts
    // values; the composite sort key needs them compressed to 32 bits.
    let mut by_ts: Vec<u32> = (0..n as u32).collect();
    by_ts.sort_unstable_by_key(|&i| (batch.requests[i as usize].ts, i));
    let mut rank = vec![0u32; n];
    for (r, &i) in by_ts.iter().enumerate() {
        rank[i as usize] = r as u32;
    }

    // Composite sort: key (range queries by lower bound) then timestamp.
    let mut keys: Vec<u64> = (0..n)
        .map(|i| ((batch.requests[i].key as u64) << 32) | rank[i] as u64)
        .collect();
    let mut payload: Vec<u32> = (0..n as u32).collect();
    let mut cost = radix_sort_pairs(&mut keys, &mut payload, cfg);

    // Single scan: split into point requests (forming runs) and range
    // queries, pick the issued request per run.
    let mut point_sorted = Vec::with_capacity(n);
    let mut runs: Vec<Run> = Vec::new();
    let mut issued: Vec<Issued> = Vec::new();
    let mut ranges: Vec<RangeReq> = Vec::new();
    // Per-run issued tracking while the run is open.
    let mut last_state: Option<IssuedKind> = None;

    for &idx in &payload {
        let req = &batch.requests[idx as usize];
        if let OpKind::Range { len } = req.op {
            ranges.push(RangeReq {
                orig_idx: idx,
                lo: req.key,
                len,
                ts: req.ts,
            });
            continue;
        }
        let pos = point_sorted.len() as u32;
        let open_new = !matches!(
            runs.last(),
            Some(r) if r.key == req.key && r.start + r.len == pos
        );
        if open_new {
            if let Some(run) = runs.last() {
                issued.push(close_run(run, &mut last_state));
            }
            runs.push(Run {
                key: req.key,
                start: pos,
                len: 0,
                has_state_ops: false,
            });
        }
        let run = runs.last_mut().expect("run was just ensured");
        run.len += 1;
        match req.op {
            OpKind::Upsert(v) => {
                run.has_state_ops = true;
                last_state = Some(IssuedKind::Upsert(v));
            }
            OpKind::Delete => {
                run.has_state_ops = true;
                last_state = Some(IssuedKind::Delete);
            }
            OpKind::Query => {}
            OpKind::Range { .. } => unreachable!("ranges handled above"),
        }
        point_sorted.push(idx);
    }
    if let Some(run) = runs.last() {
        issued.push(close_run(run, &mut last_state));
    }
    // Runs are keyed 0.. in creation order; fix up `run` back-references.
    for (i, is) in issued.iter_mut().enumerate() {
        is.run = i as u32;
    }

    // Artificial queries: two-pointer sweep of key-sorted runs against
    // lower-bound-sorted ranges (§4.1.2). `active` holds ranges whose
    // interval could still cover the current run key.
    let mut run_art: Vec<Vec<Artificial>> = vec![Vec::new(); runs.len()];
    let mut active: Vec<(u64, u32)> = Vec::new(); // (hi, range index)
    let mut ri = 0usize;
    for (run_i, run) in runs.iter().enumerate() {
        let k = run.key as u64;
        while ri < ranges.len() && (ranges[ri].lo as u64) <= k {
            let r = &ranges[ri];
            let hi = r.lo as u64 + r.len as u64 - 1;
            active.push((hi, ri as u32));
            ri += 1;
        }
        active.retain(|&(hi, _)| hi >= k);
        if run.has_state_ops {
            for &(_, range_idx) in &active {
                let r = &ranges[range_idx as usize];
                run_art[run_i].push(Artificial {
                    range_idx,
                    offset: (k - r.lo as u64) as u32,
                    ts: r.ts,
                    rank: rank[r.orig_idx as usize],
                });
            }
            run_art[run_i].sort_unstable_by_key(|a| a.rank);
        }
    }

    // Modelled cost of the combining scan (one pass), issued partition
    // (one pass over issued), and artificial generation (proportional to
    // ranges + artificial count).
    cost.merge(PrimCost::streaming(cfg, n as u64, 1, 4));
    cost.merge(PrimCost::streaming(cfg, issued.len() as u64, 2, 2));
    let art: usize = run_art.iter().map(|v| v.len()).sum();
    cost.merge(PrimCost::streaming(cfg, (ranges.len() + art) as u64, 1, 4));

    CombinePlan {
        point_sorted,
        runs,
        issued,
        ranges,
        run_art,
        rank,
        cost,
    }
}

/// Partitions ascending work-item keys into *leaf runs*: maximal
/// contiguous groups whose keys fall between the same pair of adjacent
/// leaf low-fence keys, i.e. target the same leaf under the pivot-cache
/// snapshot. Returns half-open `(start, end)` index ranges covering
/// `keys` exactly, in order.
///
/// The fences are a dispatch *hint* (a snapshot): a stale partition only
/// makes groups slightly off — every item still locates its leaf through
/// the validated traversal — so correctness never depends on them.
/// Linearization is untouched: partitioning only groups the already
/// rank-ordered issued stream, it never reorders items.
pub fn partition_leaf_runs(keys: &[u64], fences: &[u64]) -> Vec<(usize, usize)> {
    debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys must ascend");
    debug_assert!(fences.windows(2).all(|w| w[0] < w[1]), "fences must ascend");
    let mut out = Vec::new();
    if keys.is_empty() {
        return out;
    }
    // Bucket of a key = number of fences <= key; keys ascend, so the
    // fence cursor only moves forward (O(keys + fences) total).
    let advance = |mut b: usize, key: u64| -> usize {
        while b < fences.len() && fences[b] <= key {
            b += 1;
        }
        b
    };
    let mut start = 0usize;
    let mut bucket = advance(0, keys[0]);
    for (i, &key) in keys.iter().enumerate().skip(1) {
        let b = advance(bucket, key);
        if b != bucket {
            out.push((start, i));
            start = i;
            bucket = b;
        }
    }
    out.push((start, keys.len()));
    out
}

fn close_run(run: &Run, last_state: &mut Option<IssuedKind>) -> Issued {
    let kind = last_state.take().unwrap_or(IssuedKind::Query);
    debug_assert_eq!(run.has_state_ops, !matches!(kind, IssuedKind::Query));
    Issued {
        key: run.key,
        kind,
        run: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eirene_workloads::Request;

    fn plan_of(reqs: Vec<Request>) -> CombinePlan {
        build_plan(&Batch::new(reqs), &DeviceConfig::default())
    }

    #[test]
    fn paper_figure3_example() {
        // Fig. 3: Q4@T2 U(5,f)@T3 Q1@T4 U(4,a)@T5 Q4@T5' W... — transcribed
        // with our op set: requests on keys 1, 4, 5.
        let reqs = vec![
            Request::upsert(5, 0xF, 3),
            Request::query(4, 2),
            Request::query(1, 4),
            Request::upsert(4, 0xA, 5),
            Request::query(4, 6),
            Request::upsert(5, 0xE, 7),
            Request::upsert(4, 0xB, 8),
            Request::query(1, 9),
        ];
        let p = plan_of(reqs);
        assert_eq!(p.runs.len(), 3);
        assert_eq!(p.issued.len(), 3);
        // Key 1: all queries -> issued Query.
        assert_eq!(p.issued[0].key, 1);
        assert_eq!(p.issued[0].kind, IssuedKind::Query);
        // Key 4: mixed -> last update U(4,b) issued.
        assert_eq!(p.issued[1].key, 4);
        assert_eq!(p.issued[1].kind, IssuedKind::Upsert(0xB));
        // Key 5: all updates -> last update U(5,e) issued.
        assert_eq!(p.issued[2].key, 5);
        assert_eq!(p.issued[2].kind, IssuedKind::Upsert(0xE));
        // 8 point requests, 3 issued -> 5 combined away.
        assert_eq!(p.combined_away(), 5);
    }

    #[test]
    fn runs_are_timestamp_sorted() {
        let reqs = vec![
            Request::query(7, 30),
            Request::upsert(7, 1, 10),
            Request::query(7, 20),
        ];
        let p = plan_of(reqs);
        assert_eq!(p.runs.len(), 1);
        let order: Vec<u64> = p
            .point_sorted
            .iter()
            .map(|&i| [30, 10, 20][i as usize])
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn delete_last_makes_issued_delete() {
        let reqs = vec![
            Request::upsert(3, 9, 0),
            Request::delete(3, 1),
            Request::query(3, 2),
        ];
        let p = plan_of(reqs);
        assert_eq!(p.issued[0].kind, IssuedKind::Delete);
    }

    #[test]
    fn ranges_do_not_join_point_runs() {
        let reqs = vec![
            Request::query(10, 0),
            Request::range(10, 4, 1),
            Request::upsert(10, 5, 2),
        ];
        let p = plan_of(reqs);
        assert_eq!(p.runs.len(), 1);
        assert_eq!(p.runs[0].len, 2, "range must not be part of the run");
        assert_eq!(p.ranges.len(), 1);
    }

    #[test]
    fn artificial_queries_only_for_covered_keys_with_updates() {
        // Fig. 5: R(3,6)@T2; key 4 has updates, key 6 has updates, key 3
        // only a query, key 5 nothing.
        let reqs = vec![
            Request::upsert(4, 0xB, 1),
            Request::range(3, 4, 2),
            Request::query(3, 3),
            Request::query(4, 4),
            Request::upsert(4, 0xE, 5),
            Request::upsert(6, 0xA, 6),
        ];
        let p = plan_of(reqs);
        assert_eq!(p.artificial_count(), 2, "keys 4 and 6 only");
        // Key 3's run (index of run with key 3) has no artificial query.
        let run3 = p.runs.iter().position(|r| r.key == 3).unwrap();
        assert!(p.run_art[run3].is_empty());
        let run4 = p.runs.iter().position(|r| r.key == 4).unwrap();
        assert_eq!(p.run_art[run4].len(), 1);
        assert_eq!(p.run_art[run4][0].offset, 1);
        assert_eq!(p.run_art[run4][0].ts, 2);
        let run6 = p.runs.iter().position(|r| r.key == 6).unwrap();
        assert_eq!(p.run_art[run6].len(), 1);
        assert_eq!(p.run_art[run6][0].offset, 3);
    }

    #[test]
    fn overlapping_ranges_each_get_artificials() {
        let reqs = vec![
            Request::range(1, 8, 0),
            Request::range(4, 4, 1),
            Request::upsert(5, 1, 2),
        ];
        let p = plan_of(reqs);
        assert_eq!(p.artificial_count(), 2, "key 5 covered by both ranges");
    }

    #[test]
    fn issued_count_equals_distinct_point_keys() {
        let reqs: Vec<Request> = (0..100u64)
            .map(|ts| Request::upsert((ts % 10) as Key + 1, ts as u32, ts))
            .collect();
        let p = plan_of(reqs);
        assert_eq!(p.issued.len(), 10);
        assert_eq!(p.combined_away(), 90);
        assert_eq!(p.issued_updates(), 10);
        // Issued value must be the latest-timestamp value per key.
        for is in &p.issued {
            let expect = 90 + (is.key - 1);
            assert_eq!(is.kind, IssuedKind::Upsert(expect), "key {}", is.key);
        }
    }

    #[test]
    fn empty_batch_builds_empty_plan() {
        let p = plan_of(vec![]);
        assert!(p.runs.is_empty());
        assert!(p.issued.is_empty());
        assert!(p.ranges.is_empty());
    }

    #[test]
    fn leaf_runs_group_by_fence_interval() {
        // Fences split the key space into [0,10), [10,20), [20,30), [30,..).
        let fences = [0u64, 10, 20, 30];
        let keys = [1u64, 5, 9, 10, 19, 25, 31, 40];
        let runs = partition_leaf_runs(&keys, &fences);
        assert_eq!(runs, vec![(0, 3), (3, 5), (5, 6), (6, 8)]);
        // Ranges are half-open, contiguous, and cover all keys.
        assert_eq!(runs[0].0, 0);
        assert_eq!(runs.last().unwrap().1, keys.len());
        for w in runs.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }

    #[test]
    fn leaf_runs_handle_edges() {
        assert!(partition_leaf_runs(&[], &[0, 10]).is_empty());
        // All keys in one leaf -> one run.
        assert_eq!(partition_leaf_runs(&[3, 4, 5], &[0, 10]), vec![(0, 3)]);
        // Duplicate keys stay in the same run.
        assert_eq!(
            partition_leaf_runs(&[5, 5, 5, 15], &[0, 10]),
            vec![(0, 3), (3, 4)]
        );
        // Keys below the first fence (possible when the snapshot is
        // stale) still form a run.
        assert_eq!(
            partition_leaf_runs(&[1, 2, 12], &[5, 10]),
            vec![(0, 2), (2, 3)]
        );
    }

    #[test]
    fn non_positional_timestamps_are_honored() {
        // Positional order differs from ts order: issued must follow ts.
        let reqs = vec![
            Request::upsert(2, 111, 5), // later ts
            Request::upsert(2, 222, 1), // earlier ts
        ];
        let p = plan_of(reqs);
        assert_eq!(p.issued[0].kind, IssuedKind::Upsert(111));
    }
}
