//! Public API: the Eirene concurrent GPU B+tree.

use crate::exec::{execute, ExecOptions, UpdateProtection};
use crate::pivot::PivotCache;
use crate::plan::build_plan;
use eirene_baselines::common::{BatchRun, ConcurrentTree, TreeBase};
use eirene_btree::build::TreeHandle;
use eirene_sim::Phase;
use eirene_sim::{Device, DeviceConfig};
use eirene_stm::Stm;
use eirene_workloads::Batch;

/// Configuration of an [`EireneTree`].
#[derive(Clone, Debug)]
pub struct EireneOptions {
    /// Device geometry and latency model.
    pub device: DeviceConfig,
    /// Locality-aware warp reorganization (§5). Disabling it yields the
    /// paper's "+ Combining" ablation configuration (Fig. 11).
    pub locality: bool,
    /// Optimistic retries before the inner traversal falls back to full
    /// STM protection (Alg. 1 THRESHOLD).
    pub retry_threshold: u32,
    /// Arena headroom in nodes for splits across the tree's lifetime.
    pub headroom_nodes: usize,
    /// Leaf-region synchronization of the update kernel (§7 notes the
    /// fine-grained-lock alternative to the default optimistic STM).
    pub protection: UpdateProtection,
    /// Iteration-warp target (0 = auto); see
    /// [`ExecOptions::target_warps`](crate::exec::ExecOptions).
    pub target_warps: usize,
    /// Coalesced run dispatch through the snapshot pivot cache (leaf-run
    /// groups, one descent per run). Off = per-request execution, the
    /// comparison baseline of the `combine_path` bench.
    pub coalesce: bool,
}

impl Default for EireneOptions {
    fn default() -> Self {
        EireneOptions {
            device: DeviceConfig::default(),
            locality: true,
            retry_threshold: 3,
            headroom_nodes: 1 << 16,
            protection: UpdateProtection::OptimisticStm,
            target_warps: 0,
            coalesce: true,
        }
    }
}

impl EireneOptions {
    /// Small-device options for tests.
    pub fn test_small() -> Self {
        EireneOptions {
            device: DeviceConfig::test_small(),
            headroom_nodes: 1 << 14,
            ..Default::default()
        }
    }
}

/// The Eirene concurrent GPU B+tree: combining-based synchronization,
/// query/update kernel partition with optimistic STM, and locality-aware
/// warp reorganization, processing batches of timestamped requests with
/// linearizable results.
///
/// ```
/// use eirene_core::{EireneOptions, EireneTree};
/// use eirene_workloads::{Batch, Request, Response};
/// use eirene_baselines::common::ConcurrentTree;
///
/// // Bulk-load the even keys 2..=200 with value key+1.
/// let pairs: Vec<(u64, u64)> = (1..=100u64).map(|i| (2 * i, 2 * i + 1)).collect();
/// let mut tree = EireneTree::new(&pairs, EireneOptions::test_small());
///
/// // A concurrent batch: the query (timestamp 2) must observe the upsert
/// // (timestamp 1) on the same key — linearizability in timestamp order.
/// let batch = Batch::new(vec![
///     Request::upsert(10, 777, 1),
///     Request::query(10, 2),
/// ]);
/// let run = tree.run_batch(&batch);
/// assert_eq!(run.responses[1], Response::Value(Some(777)));
/// ```
pub struct EireneTree {
    base: TreeBase,
    stm: Stm,
    opts: EireneOptions,
    /// Snapshot pivot cache, rebuilt lazily at batch boundaries and
    /// dropped when a structure-modifying epoch invalidates it.
    pivot: Option<PivotCache>,
}

impl EireneTree {
    /// Builds the tree from strictly-ascending `(key, value)` pairs.
    pub fn new(pairs: &[(u64, u64)], opts: EireneOptions) -> Self {
        let stripes = (pairs.len() * 4)
            .next_power_of_two()
            .clamp(1 << 12, 1 << 22);
        let base = TreeBase::build(
            pairs,
            opts.device.clone(),
            opts.headroom_nodes,
            stripes + 64,
        );
        let stm = Stm::new(base.device.mem(), stripes);
        EireneTree {
            base,
            stm,
            opts,
            pivot: None,
        }
    }

    /// The configured options.
    pub fn options(&self) -> &EireneOptions {
        &self.opts
    }

    /// Builds the combining plan for a batch without executing it
    /// (exposed for inspection, tests and benchmarks).
    pub fn plan(&self, batch: &Batch) -> crate::plan::CombinePlan {
        build_plan(batch, self.base.device.config())
    }

    /// Executes a batch with an already-built [`CombinePlan`].
    ///
    /// [`build_plan`](crate::plan::build_plan) needs only the batch and the
    /// device configuration — not the tree — so a caller can combine batch
    /// N+1 on another host thread while batch N executes on the device (the
    /// paper's pipelined-epoch model, used by `eirene-serve`). The plan
    /// must have been built for this batch and this tree's device config.
    pub fn run_planned(&mut self, batch: &Batch, plan: &crate::plan::CombinePlan) -> BatchRun {
        let exec_opts = ExecOptions {
            locality: self.opts.locality,
            retry_threshold: self.opts.retry_threshold,
            rg_size: self.base.device.config().warp_size,
            protection: self.opts.protection,
            target_warps: self.opts.target_warps,
            coalesce: self.opts.coalesce,
        };
        // Lazily (re)build the snapshot pivot cache at the batch boundary
        // — the quiescent point where the snapshot is safe to take. A
        // cache from an earlier batch survives as long as no structure
        // modification changed the slab signature since.
        let mut rebuild_cost = None;
        if self.opts.coalesce {
            let mem = self.base.device.mem();
            let valid = self
                .pivot
                .as_ref()
                .is_some_and(|c| c.is_valid(mem, &self.base.handle));
            if !valid {
                let (cache, cost) =
                    PivotCache::build(mem, &self.base.handle, self.base.device.config());
                self.pivot = Some(cache);
                rebuild_cost = Some(cost);
            }
        }
        let mut run = execute(
            &self.base.device,
            &self.base.handle,
            &self.stm,
            &exec_opts,
            batch,
            plan,
            self.pivot.as_ref(),
        );
        if let Some(cost) = rebuild_cost {
            let cfg = self.base.device.config();
            let mut build_stats =
                cost.into_phased_kernel_stats("eirene-pivot-build", cfg, Phase::RunDispatch);
            build_stats.totals.pivot_cache_rebuilds = 1;
            run.stats.merge(&build_stats);
        }
        // A structure-modifying epoch (splits allocate, merges and
        // aborted splits retire) leaves a changed slab signature: drop
        // the snapshot before the epoch advance below recycles the
        // retired nodes it may still reference.
        if self
            .pivot
            .as_ref()
            .is_some_and(|c| !c.is_valid(self.base.device.mem(), &self.base.handle))
        {
            self.pivot = None;
        }
        // The batch boundary is a quiescent point: kernel launches are
        // synchronous, and nothing outside the launch holds node
        // addresses (pending serve tickets carry only keys). Advancing
        // the reclamation epoch here lets nodes retired by this batch's
        // merges and aborted splits be recycled by the next batch.
        self.base.device.mem().advance_epoch();
        run
    }
}

impl ConcurrentTree for EireneTree {
    fn run_batch(&mut self, batch: &Batch) -> BatchRun {
        let plan = build_plan(batch, self.base.device.config());
        self.run_planned(batch, &plan)
    }

    fn device(&self) -> &Device {
        &self.base.device
    }

    fn handle(&self) -> &TreeHandle {
        &self.base.handle
    }

    fn name(&self) -> &'static str {
        "Eirene"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eirene_btree::refops;
    use eirene_btree::validate::validate;
    use eirene_workloads::{
        Oracle, Request, Response, SequentialOracle, WorkloadGen, WorkloadSpec,
    };

    fn pairs(n: u64) -> Vec<(u64, u64)> {
        (1..=n).map(|i| (2 * i, 2 * i + 1)).collect()
    }

    #[test]
    fn pure_queries_return_correct_values() {
        let mut t = EireneTree::new(&pairs(3000), EireneOptions::test_small());
        let batch = Batch::new(
            (0..300u32)
                .map(|i| Request::query(i * 13 % 6000, i as u64))
                .collect(),
        );
        let run = t.run_batch(&batch);
        for (i, r) in run.responses.iter().enumerate() {
            let k = (i as u32) * 13 % 6000;
            let expect = ((2..=6000).contains(&k) && k.is_multiple_of(2)).then_some(k + 1);
            assert_eq!(*r, Response::Value(expect), "key {k}");
        }
    }

    #[test]
    fn same_key_requests_resolve_in_timestamp_order() {
        let mut t = EireneTree::new(&pairs(100), EireneOptions::test_small());
        let batch = Batch::new(vec![
            Request::query(10, 0), // sees pre-batch value 11
            Request::upsert(10, 100, 1),
            Request::query(10, 2), // sees 100
            Request::delete(10, 3),
            Request::query(10, 4), // sees nothing
            Request::upsert(10, 200, 5),
            Request::query(10, 6), // sees 200
        ]);
        let run = t.run_batch(&batch);
        assert_eq!(run.responses[0], Response::Value(Some(11)));
        assert_eq!(run.responses[2], Response::Value(Some(100)));
        assert_eq!(run.responses[4], Response::Value(None));
        assert_eq!(run.responses[6], Response::Value(Some(200)));
        // Final state: last state op wins.
        assert_eq!(refops::get(t.device().mem(), t.handle(), 10), Some(200));
    }

    #[test]
    fn batch_matches_oracle_mixed_workload() {
        let spec = WorkloadSpec {
            tree_size: 1 << 10,
            batch_size: 4096,
            mix: eirene_workloads::Mix {
                upsert: 0.2,
                delete: 0.1,
                range: 0.05,
                range_len: 4,
            },
            distribution: eirene_workloads::Distribution::Uniform,
            seed: 7,
        };
        let init = spec.initial_pairs();
        let pairs64: Vec<(u64, u64)> = init.iter().map(|&(k, v)| (k as u64, v as u64)).collect();
        let mut t = EireneTree::new(&pairs64, EireneOptions::test_small());
        let mut oracle = SequentialOracle::load(&init);
        let mut gen = WorkloadGen::new(spec);
        for _ in 0..2 {
            let batch = gen.next_batch();
            let got = t.run_batch(&batch).responses;
            let want = oracle.run_batch(&batch);
            for i in 0..batch.len() {
                assert_eq!(got[i], want[i], "request {i}: {:?}", batch.requests[i]);
            }
            validate(t.device().mem(), t.handle()).unwrap();
            // Tree contents must equal the oracle map.
            let tree_contents: Vec<(u64, u64)> = refops::contents(t.device().mem(), t.handle());
            let oracle_contents: Vec<(u64, u64)> = oracle
                .contents()
                .iter()
                .map(|(&k, &v)| (k as u64, v as u64))
                .collect();
            assert_eq!(tree_contents, oracle_contents);
        }
    }

    #[test]
    fn range_query_sees_update_before_its_timestamp() {
        // The Fig. 4 scenario: without artificial queries the range would
        // return the wrong value.
        let mut t = EireneTree::new(&pairs(100), EireneOptions::test_small());
        let batch = Batch::new(vec![
            Request::upsert(4, 0xB, 1),
            Request::range(3, 3, 2), // covers keys 3,4,5 at ts 2
            Request::upsert(4, 0xE, 10),
        ]);
        let run = t.run_batch(&batch);
        // Key 4 at ts 2: must see 0xB (not the final 0xE, not the old 5).
        assert_eq!(
            run.responses[1],
            Response::Range(vec![None, Some(0xB), None])
        );
        // Final state is the last update.
        assert_eq!(refops::get(t.device().mem(), t.handle(), 4), Some(0xE));
    }

    #[test]
    fn locality_off_still_correct() {
        let mut opts = EireneOptions::test_small();
        opts.locality = false;
        let mut t = EireneTree::new(&pairs(2000), EireneOptions::test_small());
        let mut t2 = EireneTree::new(&pairs(2000), opts);
        let batch = Batch::new(
            (0..512u32)
                .map(|i| {
                    if i % 4 == 0 {
                        Request::upsert(i * 7 % 4000 + 1, i, i as u64)
                    } else {
                        Request::query(i * 7 % 4000 + 1, i as u64)
                    }
                })
                .collect(),
        );
        let r1 = t.run_batch(&batch);
        let r2 = t2.run_batch(&batch);
        assert_eq!(r1.responses, r2.responses);
    }

    #[test]
    fn combining_issues_at_most_one_request_per_key() {
        let mut t = EireneTree::new(&pairs(100), EireneOptions::test_small());
        // 1000 requests on 5 keys.
        let batch = Batch::new(
            (0..1000u64)
                .map(|ts| Request::upsert((ts % 5) as u32 * 2 + 2, ts as u32, ts))
                .collect(),
        );
        let plan = t.plan(&batch);
        assert_eq!(plan.issued.len(), 5);
        let run = t.run_batch(&batch);
        // Update kernel processed only the issued requests.
        assert_eq!(run.stats.totals.requests, 5);
        for k in 0..5u64 {
            let key = k * 2 + 2;
            let expect = 995 + k; // last ts for this key
            assert_eq!(
                refops::get(t.device().mem(), t.handle(), key),
                Some(expect),
                "key {key}"
            );
        }
    }

    #[test]
    fn run_planned_matches_run_batch() {
        let batch = Batch::new(
            (0..400u32)
                .map(|i| match i % 5 {
                    0 => Request::upsert(i * 3 % 1000, i, i as u64),
                    1 => Request::delete(i * 7 % 1000, i as u64),
                    2 => Request::range(i * 11 % 1000, 4, i as u64),
                    _ => Request::query(i * 13 % 1000, i as u64),
                })
                .collect(),
        );
        let mut a = EireneTree::new(&pairs(400), EireneOptions::test_small());
        let mut b = EireneTree::new(&pairs(400), EireneOptions::test_small());
        // Plan built off-tree (only the device config matters), as the
        // serving layer's pipelined combiner does.
        let plan = b.plan(&batch);
        let ra = a.run_batch(&batch);
        let rb = b.run_planned(&batch, &plan);
        assert_eq!(ra.responses, rb.responses);
        assert_eq!(
            refops::contents(a.device().mem(), a.handle()),
            refops::contents(b.device().mem(), b.handle())
        );
    }

    #[test]
    fn heavy_insert_batch_keeps_tree_valid() {
        let mut t = EireneTree::new(&pairs(200), EireneOptions::test_small());
        let batch = Batch::new(
            (0..1000u32)
                .map(|i| Request::upsert(2 * i + 1, i, i as u64))
                .collect(),
        );
        t.run_batch(&batch);
        validate(t.device().mem(), t.handle()).unwrap();
        for i in 0..1000u32 {
            assert_eq!(
                refops::get(t.device().mem(), t.handle(), (2 * i + 1) as u64),
                Some(i as u64)
            );
        }
    }

    #[test]
    fn eirene_uses_fewer_memory_insts_than_stm_tree() {
        use eirene_baselines::StmTree;
        let p = pairs(4000);
        let batch = Batch::new(
            (0..1024u32)
                .map(|i| {
                    let key = (i * 37) % 8000 + 1;
                    if i % 20 == 0 {
                        Request::upsert(key, i, i as u64)
                    } else {
                        Request::query(key, i as u64)
                    }
                })
                .collect(),
        );
        let mut eirene = EireneTree::new(&p, EireneOptions::test_small());
        let er = eirene.run_batch(&batch);
        let mut stm = StmTree::new(&p, DeviceConfig::test_small(), 64);
        let sr = stm.run_batch(&batch);
        // Normalize per *batch* request (Eirene counts issued only in
        // `requests`, so divide totals by the batch size directly).
        let em = er.stats.totals.mem_insts as f64 / batch.len() as f64;
        let sm = sr.stats.totals.mem_insts as f64 / batch.len() as f64;
        assert!(em < sm, "eirene {em} vs stm {sm} memory insts per request");
    }
}

#[cfg(test)]
mod protection_tests {
    use super::*;
    use crate::exec::UpdateProtection;
    use eirene_btree::refops;
    use eirene_btree::validate::validate;
    use eirene_workloads::{Mix, Oracle, SequentialOracle, WorkloadGen, WorkloadSpec};

    fn lock_opts() -> EireneOptions {
        EireneOptions {
            protection: UpdateProtection::FineGrainedLocks,
            ..EireneOptions::test_small()
        }
    }

    #[test]
    fn lock_protected_updates_match_oracle() {
        let spec = WorkloadSpec {
            tree_size: 1 << 10,
            batch_size: 4096,
            mix: Mix {
                upsert: 0.3,
                delete: 0.1,
                range: 0.05,
                range_len: 4,
            },
            distribution: eirene_workloads::Distribution::Uniform,
            seed: 31,
        };
        let init = spec.initial_pairs();
        let p64: Vec<(u64, u64)> = init.iter().map(|&(k, v)| (k as u64, v as u64)).collect();
        let mut tree = EireneTree::new(&p64, lock_opts());
        let mut oracle = SequentialOracle::load(&init);
        let mut gen = WorkloadGen::new(spec);
        for _ in 0..2 {
            let batch = gen.next_batch();
            let got = tree.run_batch(&batch).responses;
            let want = oracle.run_batch(&batch);
            assert_eq!(got, want);
            validate(tree.device().mem(), tree.handle()).unwrap();
        }
    }

    #[test]
    fn both_protections_produce_identical_responses() {
        let spec = WorkloadSpec {
            tree_size: 1 << 9,
            batch_size: 2048,
            mix: Mix::update_heavy(),
            distribution: eirene_workloads::Distribution::Uniform,
            seed: 32,
        };
        let p64: Vec<(u64, u64)> = spec
            .initial_pairs()
            .iter()
            .map(|&(k, v)| (k as u64, v as u64))
            .collect();
        let batch = WorkloadGen::new(spec).next_batch();
        let r_stm = EireneTree::new(&p64, EireneOptions::test_small()).run_batch(&batch);
        let r_lock = EireneTree::new(&p64, lock_opts()).run_batch(&batch);
        assert_eq!(r_stm.responses, r_lock.responses);
    }

    #[test]
    fn lock_protection_splits_stay_valid() {
        let mut tree = EireneTree::new(
            &(1..=100u64).map(|i| (2 * i, 0)).collect::<Vec<_>>(),
            lock_opts(),
        );
        let batch = eirene_workloads::Batch::new(
            (0..800u32)
                .map(|i| eirene_workloads::Request::upsert(2 * i + 1, i, i as u64))
                .collect(),
        );
        tree.run_batch(&batch);
        validate(tree.device().mem(), tree.handle()).unwrap();
        for i in 0..800u32 {
            assert_eq!(
                refops::get(tree.device().mem(), tree.handle(), (2 * i + 1) as u64),
                Some(i as u64)
            );
        }
    }
}
