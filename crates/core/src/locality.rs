//! Locality-aware warp reorganization (§5).
//!
//! After combining, issued requests are key-sorted, so adjacent request
//! groups (RGs) target the same or adjacent leaves. Each *iteration warp*
//! processes several adjacent RGs in a loop, keeping a buffer with the
//! last accessed leaf and that leaf's RF (range field). At each RG
//! boundary the warp compares the RG's maximal key with the buffered RF
//! to choose between:
//!
//! * **horizontal traversal** — walk the leaf chain rightward from the
//!   buffered leaf (cheap when the target is within `height` hops);
//! * **vertical traversal** — descend from the root.
//!
//! If a horizontal walk overshoots `height + 1` steps, the walk aborts to
//! a vertical descent and the starting leaf's RF is refreshed with the
//! minimal key of the node reached at step `height + 1`, exactly the
//! adaptive rule of §5.

use crate::pivot::PivotCache;
use eirene_btree::build::TreeHandle;
use eirene_btree::node::{ParsedNode, NODE_WORDS, OFF_RF};
use eirene_sim::{Addr, Phase, WarpCtx};

/// Per-warp traversal state implementing the RF-guided choice.
pub struct WarpLocator<'c> {
    enabled: bool,
    /// Snapshot pivot cache for the coalesced path: vertical descents
    /// start from a cached frontier node instead of the root when the
    /// cached node still validates (see [`crate::pivot`]).
    cache: Option<&'c PivotCache>,
    /// Last accessed leaf (address + snapshot), if reusable.
    cur: Option<(Addr, ParsedNode)>,
}

/// Cooperative block load of one node (one warp memory operation).
pub fn load_node(ctx: &mut WarpCtx<'_>, addr: Addr) -> ParsedNode {
    let mut w = [0u64; NODE_WORDS];
    ctx.read_block(addr, &mut w);
    ParsedNode::from_words(&w)
}

use load_node as load;

impl<'c> WarpLocator<'c> {
    pub fn new(enabled: bool) -> Self {
        WarpLocator {
            enabled,
            cache: None,
            cur: None,
        }
    }

    /// Locator whose vertical descents consult the snapshot pivot cache.
    pub fn with_cache(enabled: bool, cache: Option<&'c PivotCache>) -> Self {
        WarpLocator {
            enabled,
            cache,
            cur: None,
        }
    }

    /// Called at every RG boundary with the RG's maximal key: applies the
    /// RF check (§5) and drops the buffer when a vertical start is the
    /// better choice.
    pub fn begin_rg(&mut self, rg_max_key: u64) {
        if !self.enabled {
            self.cur = None;
            return;
        }
        if let Some((_, node)) = &self.cur {
            if rg_max_key > node.rf {
                self.cur = None;
            }
        }
    }

    /// Invalidates the buffer (e.g. after an STM conflict, per §5 the
    /// retry traverses vertically).
    pub fn invalidate(&mut self) {
        self.cur = None;
    }

    /// Locates the leaf owning `key`, horizontally from the buffered leaf
    /// when possible, vertically otherwise. Returns the leaf address and
    /// snapshot (unprotected reads — callers that mutate re-validate
    /// transactionally).
    pub fn locate(
        &mut self,
        ctx: &mut WarpCtx<'_>,
        handle: &TreeHandle,
        key: u64,
    ) -> (Addr, ParsedNode) {
        let height = handle.height(ctx.raw_mem());
        if self.enabled {
            if let Some((addr, node)) = self.cur.take() {
                match self.walk_right(ctx, addr, node, key, height) {
                    Some(hit) => {
                        self.cur = Some(hit);
                        return hit;
                    }
                    None => {
                        // Overshot: fall through to a vertical descent.
                    }
                }
            }
        }
        let hit = self.descend(ctx, handle, key);
        self.cur = self.enabled.then_some(hit);
        hit
    }

    /// Horizontal traversal with the height+1 overshoot bound and RF
    /// refresh. Returns `None` when the walk aborted to vertical.
    fn walk_right(
        &mut self,
        ctx: &mut WarpCtx<'_>,
        start_addr: Addr,
        start_node: ParsedNode,
        key: u64,
        height: u64,
    ) -> Option<(Addr, ParsedNode)> {
        let prev = ctx.set_phase(Phase::HorizontalTraversal);
        ctx.stats.horizontal_traversals += 1;
        let mut addr = start_addr;
        let mut node = start_node;
        let mut steps = 0u64;
        // Lehman-Yao walk: the owning leaf is the first one whose high
        // bound exceeds the key.
        while key >= node.high && node.next != 0 {
            ctx.control(4);
            steps += 1;
            if steps > height {
                // Overshoot: refresh the starting leaf's RF with the high
                // bound of the node at step height+1, then give up and
                // descend vertically (§5).
                ctx.write(start_addr + OFF_RF, node.high.min(node.rf));
                ctx.control(1);
                ctx.set_phase(prev);
                return None;
            }
            addr = node.next;
            node = load(ctx, addr);
            ctx.stats.horizontal_steps += 1;
        }
        ctx.control(1);
        ctx.set_phase(prev);
        Some((addr, node))
    }

    /// Vertical descent from the root with right-hops at the leaf level.
    ///
    /// This traversal is *unprotected* (Alg. 1 line 29): it can observe
    /// another transaction's uncommitted or rolled-back eager writes, so
    /// everything it reads is treated as a hint — malformed nodes (empty
    /// inners, null children, runaway depth) restart the descent, and the
    /// caller's STM leaf region re-validates ownership before mutating.
    fn descend(
        &mut self,
        ctx: &mut WarpCtx<'_>,
        handle: &TreeHandle,
        key: u64,
    ) -> (Addr, ParsedNode) {
        let outer = ctx.set_phase(Phase::VerticalTraversal);
        // One cache consultation per descent: binary-search the staged
        // frontier fences for the node owning `key`. The hit is a *hint*
        // like everything else an unprotected traversal reads — the loaded
        // node re-validates below and any mismatch restarts from the root.
        let mut start: Option<Addr> = self.cache.map(|cache| {
            let prev = ctx.set_phase(Phase::RunDispatch);
            ctx.control(cache.lookup_cost());
            ctx.set_phase(prev);
            cache.lookup(key)
        });
        'restart: loop {
            ctx.set_phase(Phase::VerticalTraversal);
            ctx.stats.vertical_traversals += 1;
            let (mut addr, from_cache) = match start.take() {
                Some(hint) => (hint, true),
                None => (ctx.read(handle.root_word), false),
            };
            let mut node = load(ctx, addr);
            ctx.stats.vertical_steps += 1;
            if from_cache {
                // Validate the snapshot start: alive and owning the key
                // between its fences (a split since the snapshot shrinks
                // HIGH; a merge sets the dead bit).
                ctx.control(4);
                if node.is_dead() || node.count() == 0 || key < node.low || key >= node.high {
                    ctx.charge_cycles(50);
                    continue 'restart;
                }
                ctx.stats.pivot_cache_hits += 1;
            }
            let mut depth = 0u32;
            while !node.is_leaf() {
                ctx.control(12);
                depth += 1;
                if depth > 64 || node.count() == 0 {
                    ctx.charge_cycles(50);
                    continue 'restart;
                }
                let child = node.vals[node.child_slot(key)];
                if child == 0 {
                    ctx.charge_cycles(50);
                    continue 'restart;
                }
                addr = child;
                node = load(ctx, addr);
                ctx.stats.vertical_steps += 1;
            }
            ctx.set_phase(Phase::HorizontalTraversal);
            let mut hops = 0u32;
            while key >= node.high && node.next != 0 {
                ctx.control(4);
                hops += 1;
                if hops > 256 {
                    ctx.charge_cycles(50);
                    continue 'restart;
                }
                addr = node.next;
                node = load(ctx, addr);
                ctx.stats.horizontal_steps += 1;
            }
            ctx.control(1);
            ctx.set_phase(outer);
            return (addr, node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eirene_btree::build::{arena_budget, bulk_build};
    use eirene_sim::{Device, DeviceConfig};

    fn tree(n: u64) -> (Device, TreeHandle) {
        let dev = Device::new(arena_budget(n as usize, 64), DeviceConfig::test_small());
        let pairs: Vec<(u64, u64)> = (1..=n).map(|i| (2 * i, 2 * i + 1)).collect();
        let t = bulk_build(dev.mem(), &pairs);
        (dev, t)
    }

    #[test]
    fn first_locate_descends_vertically() {
        let (dev, t) = tree(5000);
        let mut ctx = WarpCtx::new(dev.mem(), dev.config(), 0);
        let mut loc = WarpLocator::new(true);
        let (_, leaf) = loc.locate(&mut ctx, &t, 500);
        assert_eq!(leaf.find(500).map(|i| leaf.vals[i]), Some(501));
        assert_eq!(ctx.stats.vertical_traversals, 1);
        assert_eq!(ctx.stats.horizontal_traversals, 0);
    }

    #[test]
    fn adjacent_keys_walk_horizontally() {
        let (dev, t) = tree(5000);
        let mut ctx = WarpCtx::new(dev.mem(), dev.config(), 0);
        let mut loc = WarpLocator::new(true);
        loc.locate(&mut ctx, &t, 500);
        let v_before = ctx.stats.vertical_traversals;
        // Next key is nearby: must reuse the buffer.
        let (_, leaf) = loc.locate(&mut ctx, &t, 530);
        assert_eq!(leaf.find(530).map(|i| leaf.vals[i]), Some(531));
        assert_eq!(
            ctx.stats.vertical_traversals, v_before,
            "no new vertical descent"
        );
        assert!(ctx.stats.horizontal_traversals >= 1);
    }

    #[test]
    fn distant_key_overshoots_and_falls_back_vertical() {
        let (dev, t) = tree(5000);
        let mut ctx = WarpCtx::new(dev.mem(), dev.config(), 0);
        let mut loc = WarpLocator::new(true);
        let (start_addr, _) = loc.locate(&mut ctx, &t, 2);
        let rf_before = dev.mem().read(start_addr + OFF_RF);
        let (_, leaf) = loc.locate(&mut ctx, &t, 9000);
        assert_eq!(leaf.find(9000).map(|i| leaf.vals[i]), Some(9001));
        assert_eq!(ctx.stats.vertical_traversals, 2, "fallback descent");
        let rf_after = dev.mem().read(start_addr + OFF_RF);
        assert!(rf_after <= rf_before, "overshoot must refresh the RF bound");
        assert_ne!(rf_after, u64::MAX);
    }

    #[test]
    fn begin_rg_honors_rf_bound() {
        let (dev, t) = tree(5000);
        let mut ctx = WarpCtx::new(dev.mem(), dev.config(), 0);
        let mut loc = WarpLocator::new(true);
        loc.locate(&mut ctx, &t, 2);
        // A far-away RG max key must force a vertical start.
        loc.begin_rg(10_000);
        assert!(loc.cur.is_none());
        let (_, _) = loc.locate(&mut ctx, &t, 9998);
        assert_eq!(ctx.stats.vertical_traversals, 2);
    }

    #[test]
    fn disabled_locator_always_descends() {
        let (dev, t) = tree(2000);
        let mut ctx = WarpCtx::new(dev.mem(), dev.config(), 0);
        let mut loc = WarpLocator::new(false);
        loc.locate(&mut ctx, &t, 100);
        loc.locate(&mut ctx, &t, 102);
        loc.locate(&mut ctx, &t, 104);
        assert_eq!(ctx.stats.vertical_traversals, 3);
        assert_eq!(ctx.stats.horizontal_traversals, 0);
    }

    #[test]
    fn locate_works_for_absent_keys() {
        let (dev, t) = tree(1000);
        let mut ctx = WarpCtx::new(dev.mem(), dev.config(), 0);
        let mut loc = WarpLocator::new(true);
        let (_, leaf) = loc.locate(&mut ctx, &t, 501); // odd key, absent
        assert_eq!(leaf.find(501), None);
        // And keys beyond the maximum.
        let (_, leaf) = loc.locate(&mut ctx, &t, 99_999);
        assert_eq!(leaf.find(99_999), None);
        assert_eq!(leaf.next, 0, "must land on the rightmost leaf");
    }
}
