//! **Eirene** — the paper's contribution: a combining-based concurrency
//! control framework for concurrent GPU B+trees (PPoPP'23).
//!
//! A batch of timestamped requests is processed in five stages
//! (Alg. 1):
//!
//! 1. **Combining-based synchronization** ([`plan`]): requests are radix
//!    -sorted by (key, logical timestamp); requests on the same key are
//!    combined into a *run* with exactly one issued request, and the
//!    dependence among the rest is captured so their results can be
//!    computed without touching the tree. Key conflicts are thereby
//!    eliminated (§4.1).
//! 2. **Range-query handling** ([`plan`]): range queries sort by their
//!    lower bound; for every in-range key that has updates in the batch an
//!    *artificial query* carrying the range query's timestamp is inserted
//!    into that key's run (§4.1.2).
//! 3. **Kernel partition and execution** ([`exec`]): issued requests split
//!    into a query kernel (no synchronization at all) and an update kernel
//!    (optimistic: unprotected inner traversal, STM-protected leaf region
//!    with version validation, full-STM fallback after a retry threshold)
//!    (§4.2).
//! 4. **Locality-aware warp reorganization** ([`locality`]): adjacent
//!    request groups execute as iteration warps that reuse the previous
//!    group's leaf, traversing horizontally along the leaf chain when the
//!    RF (range field) bound says it is profitable, vertically otherwise
//!    (§5).
//! 5. **Result calculation** ([`exec`]): unissued requests compute their
//!    responses from the dependence chain and the issued requests'
//!    retrieved old values; range results are patched from artificial
//!    queries. The outcome is linearizable in logical-timestamp order
//!    (§6) — property-tested against the sequential oracle.

pub mod exec;
pub mod locality;
pub mod pivot;
pub mod plan;
mod tree;

pub use exec::UpdateProtection;
pub use tree::{EireneOptions, EireneTree};
