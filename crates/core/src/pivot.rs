//! Snapshot pivot cache: a compact, read-only copy of the tree's upper
//! internal levels, rebuilt lazily at batch boundaries.
//!
//! Every issued request used to pay a full root-to-leaf descent — O(depth)
//! node loads — even though a 16k-request epoch re-reads the same root and
//! upper internal nodes thousands of times. The cache snapshots the
//! deepest internal level that fits in [`FRONTIER_CAP`] entries (the
//! *frontier*) plus the low-fence key of every leaf, so run dispatch
//! binary-searches host-staged fences instead of chasing device-memory
//! pointers, and each descent starts at a frontier node instead of the
//! root.
//!
//! **Snapshot rule.** The cache is built at a batch boundary — the same
//! quiescent point where the slab reclamation epoch advances (DESIGN.md
//! §14): no kernel is in flight and nothing outside the tree holds node
//! addresses. A snapshot stays valid as long as no structure modification
//! has happened since it was taken; every structure modification either
//! allocates (splits, root growth) or retires (merges, aborted splits)
//! slab blocks, so the slab counters `(live, reused, bump_allocs)` form a
//! cheap signature that changes iff the node population changed. Epochs
//! that only mutate leaf *contents* keep every internal node's address and
//! fences intact, so the snapshot survives them.
//!
//! **Safety net.** Validity checking is per-epoch, but the update kernel
//! can split nodes *during* an epoch that started with a valid snapshot.
//! A descent that starts from a cached node therefore re-validates the
//! node on load (alive, internal, owns the key between its LOW/HIGH
//! fences) and falls back to a root descent on any mismatch — the same
//! hint discipline the unprotected traversal already applies to everything
//! it reads (Alg. 1 line 29).

use eirene_btree::build::TreeHandle;
use eirene_btree::node::{NodeRef, NODE_WORDS};
use eirene_primitives::PrimCost;
use eirene_sim::{Addr, DeviceConfig, GlobalMemory};

/// Maximum frontier width: the deepest internal level with at most this
/// many nodes becomes the descent frontier. 4096 entries (two words each)
/// comfortably fit the shared-memory budget the staging cost models.
pub const FRONTIER_CAP: usize = 4096;

/// Slab-layer signature used to detect structure modifications between
/// batch boundaries. `(live, reused, bump_allocs)` changes whenever a
/// node is allocated or retired; the reclamation epoch itself is excluded
/// because it advances every batch regardless of structure changes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlabSig {
    live: u64,
    reused: u64,
    bump_allocs: u64,
}

/// Reads the current structure signature at a quiescent point.
pub fn slab_sig(mem: &GlobalMemory) -> SlabSig {
    let s = mem.slab_stats();
    SlabSig {
        live: s.live,
        reused: s.reused,
        bump_allocs: s.bump_allocs,
    }
}

/// The snapshot pivot cache (see module docs).
pub struct PivotCache {
    /// `(inclusive low fence, node address)` per frontier node, in
    /// ascending fence order; entry 0 covers keys from zero.
    frontier: Vec<(u64, Addr)>,
    /// Low-fence key of every leaf (the keys stored in the leaf-parent
    /// level), ascending. Used for leaf-run partitioning at dispatch.
    leaf_fences: Vec<u64>,
    /// Signature of the slab layer when the snapshot was taken.
    sig: SlabSig,
    /// Root address when the snapshot was taken.
    root: Addr,
    /// Control instructions charged per frontier lookup
    /// (`log2(frontier) + 2`, the binary search).
    lookup_cost: u64,
}

impl PivotCache {
    /// Builds a snapshot by walking the internal levels host-side (the
    /// batch boundary is quiescent, so uninstrumented reads are safe).
    /// Returns the cache and the modelled device cost of the build — one
    /// streaming pass over every internal node scanned, which the caller
    /// charges to the batch like any other host-executed primitive.
    pub fn build(mem: &GlobalMemory, handle: &TreeHandle, cfg: &DeviceConfig) -> (Self, PrimCost) {
        let root = handle.root(mem);
        let sig = slab_sig(mem);
        let mut level: Vec<(u64, Addr)> = vec![(0, root)];
        let mut frontier = level.clone();
        let mut nodes_scanned = 0u64;
        let leaf_fences = loop {
            if (NodeRef { addr: level[0].1 }).is_leaf(mem) {
                // Root-is-leaf tree (or we walked past the last internal
                // level): the previous level's entries *are* the leaf
                // fences.
                break level.iter().map(|&(f, _)| f).collect::<Vec<u64>>();
            }
            let mut children = Vec::with_capacity(level.len() * eirene_btree::node::FANOUT);
            for &(_, addr) in &level {
                let n = NodeRef { addr };
                nodes_scanned += 1;
                for i in 0..n.count(mem) {
                    children.push((n.key(mem, i), n.val(mem, i)));
                }
            }
            if level.len() <= FRONTIER_CAP {
                frontier = level.clone();
            }
            level = children;
        };
        let lookup_cost = (usize::BITS - frontier.len().leading_zeros()) as u64 + 2;
        let cost = PrimCost::streaming(cfg, nodes_scanned * NODE_WORDS as u64, 1, 1);
        (
            PivotCache {
                frontier,
                leaf_fences,
                sig,
                root,
                lookup_cost,
            },
            cost,
        )
    }

    /// True while no structure modification has happened since the
    /// snapshot: same slab signature, same root.
    pub fn is_valid(&self, mem: &GlobalMemory, handle: &TreeHandle) -> bool {
        self.sig == slab_sig(mem) && self.root == handle.root(mem)
    }

    /// Frontier node whose subtree owned `key` at snapshot time: binary
    /// search for the last fence `<=` key (entry 0 is unbounded below).
    pub fn lookup(&self, key: u64) -> Addr {
        let idx = self.frontier.partition_point(|&(f, _)| f <= key);
        self.frontier[idx.max(1) - 1].1
    }

    /// Control instructions one frontier lookup costs on the device.
    pub fn lookup_cost(&self) -> u64 {
        self.lookup_cost
    }

    /// Leaf low-fence keys of the snapshot (ascending), for leaf-run
    /// partitioning.
    pub fn leaf_fences(&self) -> &[u64] {
        &self.leaf_fences
    }

    /// Number of frontier entries.
    pub fn frontier_len(&self) -> usize {
        self.frontier.len()
    }

    /// Modelled cost of staging the frontier fences into shared memory at
    /// kernel start (one streaming pass over the fence words), charged
    /// once per kernel that dispatches through the cache.
    pub fn staging_cost(&self, cfg: &DeviceConfig) -> PrimCost {
        PrimCost::streaming(cfg, self.frontier.len() as u64, 1, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eirene_btree::build::{arena_budget, bulk_build};
    use eirene_sim::Device;

    fn tree(n: u64) -> (Device, TreeHandle) {
        let dev = Device::new(arena_budget(n as usize, 64), DeviceConfig::test_small());
        let pairs: Vec<(u64, u64)> = (1..=n).map(|i| (2 * i, 2 * i + 1)).collect();
        let t = bulk_build(dev.mem(), &pairs);
        (dev, t)
    }

    #[test]
    fn lookup_returns_owning_frontier_node() {
        let (dev, t) = tree(5000);
        let (cache, _) = PivotCache::build(dev.mem(), &t, dev.config());
        assert!(cache.frontier_len() > 1, "tree is tall enough to cache");
        for key in [0u64, 2, 777, 4999, 10_000, u64::MAX] {
            let addr = cache.lookup(key);
            let n = NodeRef { addr };
            assert!(!n.is_leaf(dev.mem()), "frontier nodes are internal");
            assert!(n.low(dev.mem()) <= key);
            assert!(key < n.high(dev.mem()) || n.high(dev.mem()) == u64::MAX);
        }
    }

    #[test]
    fn leaf_fences_cover_every_leaf() {
        let (dev, t) = tree(5000);
        let (cache, _) = PivotCache::build(dev.mem(), &t, dev.config());
        let fences = cache.leaf_fences();
        assert!(fences.windows(2).all(|w| w[0] < w[1]), "ascending");
        // Walk the leaf chain: every leaf's min key must be a fence.
        let mut addr = t.root(dev.mem());
        loop {
            let n = NodeRef { addr };
            if n.is_leaf(dev.mem()) {
                break;
            }
            addr = n.val(dev.mem(), 0);
        }
        let mut count = 0usize;
        loop {
            let n = NodeRef { addr };
            assert!(
                fences.binary_search(&n.min_key(dev.mem())).is_ok(),
                "leaf fence missing for leaf at {addr:#x}"
            );
            count += 1;
            if n.next(dev.mem()) == 0 {
                break;
            }
            addr = n.next(dev.mem());
        }
        assert_eq!(count, fences.len());
    }

    #[test]
    fn signature_tracks_structure_changes() {
        let (dev, t) = tree(1000);
        let (cache, _) = PivotCache::build(dev.mem(), &t, dev.config());
        assert!(cache.is_valid(dev.mem(), &t));
        // Epoch advances alone must not invalidate.
        dev.mem().advance_epoch();
        assert!(cache.is_valid(dev.mem(), &t));
        // An allocation (as a split would do) must invalidate.
        let _ = NodeRef::alloc(dev.mem(), true);
        assert!(!cache.is_valid(dev.mem(), &t));
    }

    #[test]
    fn retire_invalidates_signature() {
        let (dev, t) = tree(1000);
        let spare = NodeRef::alloc(dev.mem(), true);
        let (cache, _) = PivotCache::build(dev.mem(), &t, dev.config());
        assert!(cache.is_valid(dev.mem(), &t));
        spare.retire(dev.mem());
        assert!(!cache.is_valid(dev.mem(), &t));
    }

    #[test]
    fn build_cost_is_charged() {
        let (dev, t) = tree(5000);
        let (_, cost) = PivotCache::build(dev.mem(), &t, dev.config());
        assert!(cost.mem_words > 0);
        assert!(cost.cycles > 0);
    }

    #[test]
    fn single_leaf_tree_builds_trivial_cache() {
        let (dev, t) = tree(4);
        let (cache, _) = PivotCache::build(dev.mem(), &t, dev.config());
        // Root is a leaf: the frontier is the root itself.
        assert_eq!(cache.frontier_len(), 1);
        assert_eq!(cache.lookup(42), t.root(dev.mem()));
        assert_eq!(cache.leaf_fences(), &[0]);
    }
}
