//! Kernel execution and result calculation (Alg. 1, §4.2).
//!
//! After combining, the issued requests are partitioned by type:
//!
//! * the **query kernel** processes issued point queries and range queries
//!   with *no synchronization at all* — safe because issued requests have
//!   no key conflicts and queries do not modify the structure;
//! * the **update kernel** processes issued upserts/deletes with the
//!   optimistic scheme: unprotected inner-node traversal (locality-aware,
//!   §5), an STM-protected leaf region guarded by the leaf-version
//!   validation of Eunomia, and a full STM-protected descent as the
//!   fallback once the retry threshold is exceeded.
//!
//! Both kernels record the *old value* of each issued key; the
//! **result-calculation** phase then resolves every unissued request from
//! its run's dependence chain and patches range-query slots from
//! artificial queries — all without touching the tree.

use crate::locality::WarpLocator;
use crate::pivot::PivotCache;
use crate::plan::{partition_leaf_runs, Artificial, CombinePlan, IssuedKind, Run};
use eirene_baselines::common::{charge_request_io, BatchRun, ResponseBuf};
use eirene_btree::build::TreeHandle;
use eirene_btree::node::{
    meta_count, meta_is_dead, meta_is_leaf, MIN_OCCUPANCY, OFF_LOW, OFF_META, OFF_VERSION,
};
use eirene_btree::txops::{
    tx_delete_at_leaf, tx_delete_rebalancing, tx_descend, tx_hop_right, tx_upsert_at_leaf,
    LeafDelete, LeafUpsert, NO_VALUE,
};
use eirene_primitives::PrimCost;
use eirene_sim::{Device, KernelStats, Phase, TraceEventKind};
use eirene_stm::{Abort, Stm};
use eirene_workloads::{Batch, OpKind, Response};
use std::sync::atomic::{AtomicU64, Ordering};

/// How the update kernel protects leaf-region operations. The paper's
/// design uses the optimistic STM scheme of Alg. 1; §7 notes that
/// "synchronization schemes other than STM can be used in the
/// implementation, such as fine-grained locks" — that alternative is
/// provided for the ablation benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum UpdateProtection {
    /// Alg. 1: unprotected inner traversal, STM-protected leaf region with
    /// version validation, full-STM fallback past the retry threshold.
    #[default]
    OptimisticStm,
    /// Latch-coupled descent with preemptive splits (the Lock GB-tree's
    /// update machinery) for every issued update. No optimism, and no
    /// locality reuse on the update path.
    FineGrainedLocks,
}

/// Tunables of the execution engine.
#[derive(Clone, Copy, Debug)]
pub struct ExecOptions {
    /// Enable locality-aware warp reorganization (§5). Off = the paper's
    /// "+ Combining" ablation configuration (Fig. 11).
    pub locality: bool,
    /// Optimistic retries before the inner traversal falls back to full
    /// STM protection (Alg. 1 line 28 THRESHOLD).
    pub retry_threshold: u32,
    /// Requests per request group (warp size in the paper).
    pub rg_size: usize,
    /// Leaf-region synchronization of the update kernel.
    pub protection: UpdateProtection,
    /// Target number of iteration warps per kernel; request groups are
    /// spread contiguously over this many warps (0 = one per resident
    /// warp). Smaller values mean more RGs per iteration warp — more
    /// locality reuse, less parallelism — the trade-off §5 discusses.
    pub target_warps: usize,
    /// Coalesced run dispatch: group work items into leaf runs (one
    /// descent per run, in-leaf application for run-mates) and start
    /// descents from the snapshot pivot cache. Off = the per-request
    /// baseline, one full descent per issued request.
    pub coalesce: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            locality: true,
            retry_threshold: 3,
            rg_size: 32,
            protection: UpdateProtection::OptimisticStm,
            target_warps: 0,
            coalesce: true,
        }
    }
}

/// One query-kernel work item, in ascending key order.
enum QkItem {
    /// Issued point query for run `run`.
    Query { run: u32, key: u64 },
    /// Range query `range_idx` over `[lo, lo+len)`.
    Range { range_idx: u32, lo: u64, len: u32 },
}

impl QkItem {
    fn sort_key(&self) -> u64 {
        match self {
            QkItem::Query { key, .. } => *key,
            QkItem::Range { lo, .. } => *lo,
        }
    }
}

/// Executes a combined batch on the device. `stm` protects the update
/// kernel's leaf region. `pivot` is the snapshot pivot cache for the
/// coalesced dispatch path (`None` = per-request descents from the root).
pub fn execute(
    device: &Device,
    handle: &TreeHandle,
    stm: &Stm,
    opts: &ExecOptions,
    batch: &Batch,
    plan: &CombinePlan,
    pivot: Option<&PivotCache>,
) -> BatchRun {
    let pivot = pivot.filter(|_| opts.coalesce);
    let n = batch.len();
    let responses = ResponseBuf::new(n);
    // Old value per run, retrieved by the run's issued request.
    let old_vals: Vec<AtomicU64> = (0..plan.runs.len())
        .map(|_| AtomicU64::new(NO_VALUE))
        .collect();

    // --- Partition issued requests into kernel work lists (Alg.1 l.3). --
    let mut qk_items: Vec<QkItem> = Vec::new();
    let mut uk_items: Vec<(u32, u64, IssuedKind)> = Vec::new();
    for is in &plan.issued {
        match is.kind {
            IssuedKind::Query => qk_items.push(QkItem::Query {
                run: is.run,
                key: is.key as u64,
            }),
            kind => uk_items.push((is.run, is.key as u64, kind)),
        }
    }
    // Merge ranges into the query-kernel stream by key (both sorted).
    let mut merged: Vec<QkItem> = Vec::with_capacity(qk_items.len() + plan.ranges.len());
    {
        let mut qi = qk_items.into_iter().peekable();
        let mut ri = plan.ranges.iter().enumerate().peekable();
        loop {
            match (qi.peek(), ri.peek()) {
                (Some(q), Some((_, r))) => {
                    if q.sort_key() <= r.lo as u64 {
                        merged.push(qi.next().expect("peeked"));
                    } else {
                        let (idx, r) = ri.next().expect("peeked");
                        merged.push(QkItem::Range {
                            range_idx: idx as u32,
                            lo: r.lo as u64,
                            len: r.len,
                        });
                    }
                }
                (Some(_), None) => merged.push(qi.next().expect("peeked")),
                (None, Some(_)) => {
                    let (idx, r) = ri.next().expect("peeked");
                    merged.push(QkItem::Range {
                        range_idx: idx as u32,
                        lo: r.lo as u64,
                        len: r.len,
                    });
                }
                (None, None) => break,
            }
        }
    }
    let qk_items = merged;

    // Range results are accumulated here (written by the query kernel,
    // patched by result calculation) and installed into `responses` last.
    let range_results: Vec<parking_lot_free::SlotVec> = plan
        .ranges
        .iter()
        .map(|r| parking_lot_free::SlotVec::new(r.len as usize))
        .collect();

    // ------------------------- Query kernel ----------------------------
    let query_stats = launch_grouped(
        device,
        handle,
        opts,
        &qk_items,
        pivot,
        "eirene-query",
        |ctx, loc, item| match *item {
            QkItem::Query { run, key } => {
                ctx.begin_request();
                charge_request_io(ctx);
                let run_len = plan.runs[run as usize].len;
                if run_len > 1 {
                    ctx.emit(TraceEventKind::CombineHit, run_len as u64);
                }
                let (_, leaf) = loc.locate(ctx, handle, key);
                let prev = ctx.set_phase(Phase::LeafOp);
                ctx.control(12);
                let v = leaf.find(key).map_or(NO_VALUE, |i| leaf.vals[i]);
                ctx.set_phase(prev);
                old_vals[run as usize].store(v, Ordering::Relaxed);
                ctx.end_request();
            }
            QkItem::Range { range_idx, lo, len } => {
                ctx.begin_request();
                charge_request_io(ctx);
                let hi = lo + len as u64 - 1;
                let (_, mut leaf) = loc.locate(ctx, handle, lo);
                let prev = ctx.set_phase(Phase::LeafOp);
                loop {
                    for i in 0..leaf.count() {
                        let k = leaf.keys[i];
                        if k >= lo && k <= hi {
                            range_results[range_idx as usize].set((k - lo) as usize, leaf.vals[i]);
                        }
                    }
                    ctx.control(leaf.count() as u64 + 2);
                    if hi < leaf.high || leaf.next == 0 {
                        break;
                    }
                    let next = leaf.next;
                    ctx.set_phase(Phase::HorizontalTraversal);
                    leaf = crate::locality::load_node(ctx, next);
                    ctx.stats.horizontal_steps += 1;
                    ctx.set_phase(Phase::LeafOp);
                }
                ctx.set_phase(prev);
                ctx.end_request();
            }
        },
    );

    // ------------------------- Update kernel ---------------------------
    let update_stats = launch_grouped(
        device,
        handle,
        opts,
        &uk_items,
        pivot,
        "eirene-update",
        |ctx, loc, item| {
            let (run, key, kind) = *item;
            ctx.begin_request();
            charge_request_io(ctx);
            let run_len = plan.runs[run as usize].len;
            if run_len > 1 {
                ctx.emit(TraceEventKind::CombineHit, run_len as u64);
            }
            let old = match opts.protection {
                UpdateProtection::OptimisticStm => {
                    update_one(ctx, handle, stm, opts, loc, key, kind)
                }
                UpdateProtection::FineGrainedLocks => match kind {
                    IssuedKind::Upsert(v) => {
                        eirene_baselines::lock::locked_upsert(ctx, handle, key, v as u64)
                    }
                    IssuedKind::Delete => eirene_baselines::lock::locked_delete(ctx, handle, key),
                    IssuedKind::Query => unreachable!("queries run in the query kernel"),
                },
            };
            old_vals[run as usize].store(old, Ordering::Relaxed);
            ctx.end_request();
        },
    );

    // ----------------------- Result calculation ------------------------
    let resolve_cost = resolve(batch, plan, &old_vals, &responses, &range_results);

    // Install range responses.
    for (idx, r) in plan.ranges.iter().enumerate() {
        let slots = range_results[idx].snapshot();
        let vec: Vec<Option<u32>> = slots
            .iter()
            .map(|&v| (v != NO_VALUE).then_some(v as u32))
            .collect();
        responses.set(r.orig_idx as usize, Response::Range(vec));
    }

    // ----------------------------- Stats --------------------------------
    let cfg = device.config();
    let mut stats = plan
        .cost
        .into_phased_kernel_stats("eirene-combine", cfg, Phase::Combine);
    stats.merge(&query_stats);
    stats.merge(&update_stats);
    stats.merge(&resolve_cost.into_phased_kernel_stats("eirene-resolve", cfg, Phase::ResultCalc));
    if let Some(cache) = pivot {
        // Staging the frontier fences into shared memory, once per kernel
        // that dispatched through the cache.
        let mut staging = cache.staging_cost(cfg);
        staging.merge(cache.staging_cost(cfg));
        stats.merge(&staging.into_phased_kernel_stats("eirene-dispatch", cfg, Phase::RunDispatch));
    }

    BatchRun {
        responses: responses.into_vec(),
        stats,
    }
}

/// Executes one issued update with the optimistic protocol of Alg. 1.
fn update_one(
    ctx: &mut eirene_sim::WarpCtx<'_>,
    handle: &TreeHandle,
    stm: &Stm,
    opts: &ExecOptions,
    loc: &mut WarpLocator,
    key: u64,
    kind: IssuedKind,
) -> u64 {
    let mut retries = 0u32;
    loop {
        if retries >= opts.retry_threshold {
            // Fallback: the whole traversal under STM protection
            // (Alg. 1 lines 30-34). Unbounded retries: progress is
            // guaranteed because aborting releases ownership.
            loc.invalidate();
            let old = stm
                .run(ctx, usize::MAX >> 1, |tx, ctx| match kind {
                    IssuedKind::Upsert(v) => {
                        let (addr, count) = tx_descend(tx, ctx, handle, key, true)?;
                        match tx_upsert_at_leaf(tx, ctx, addr, count, key, v as u64)? {
                            LeafUpsert::Done(old) => Ok(old),
                            LeafUpsert::Full => unreachable!("descent guarantees room"),
                        }
                    }
                    IssuedKind::Delete => tx_delete_rebalancing(tx, ctx, handle, key),
                    IssuedKind::Query => unreachable!("queries run in the query kernel"),
                })
                .expect("unbounded retries cannot exhaust");
            return old;
        }

        // Optimistic pass: unprotected inner traversal (lines 28-29),
        // leaf-version validation + STM-protected leaf region (37-45).
        let (addr, node) = loc.locate(ctx, handle, key);
        let leafvers = node.version;
        let mut need_smo = false;
        let outer = ctx.set_phase(Phase::LeafOp);
        let attempt = {
            let mut tx = stm.begin();
            let r = (|| {
                let v2 = tx.read(ctx, addr + OFF_VERSION)?;
                ctx.control(1);
                if v2 != leafvers {
                    return Ok(None); // stale leaf reference (line 38)
                }
                let meta = tx.read(ctx, addr + OFF_META)?;
                ctx.control(1);
                if !meta_is_leaf(meta) || meta_is_dead(meta) {
                    // The unprotected hint was garbage, or the leaf was
                    // merged away and awaits reclamation.
                    return Ok(None);
                }
                let count = meta_count(meta);
                let (laddr, lcount) = tx_hop_right(&mut tx, ctx, addr, count, key)?;
                // Ownership proof: hop_right established key < high; the
                // low fence closes the other side. A leaf located right of
                // the target (possible only from a torn hint) fails here
                // and retries vertically.
                let low = tx.read(ctx, laddr + OFF_LOW)?;
                ctx.control(1);
                if key < low {
                    return Ok(None);
                }
                match kind {
                    IssuedKind::Upsert(v) => {
                        match tx_upsert_at_leaf(&mut tx, ctx, laddr, lcount, key, v as u64)? {
                            LeafUpsert::Done(old) => Ok(Some(old)),
                            LeafUpsert::Full => {
                                need_smo = true;
                                Err(Abort)
                            }
                        }
                    }
                    IssuedKind::Delete => {
                        match tx_delete_at_leaf(&mut tx, ctx, laddr, lcount, key, MIN_OCCUPANCY)? {
                            LeafDelete::Done(old) => Ok(Some(old)),
                            LeafDelete::Underflow => {
                                need_smo = true;
                                Err(Abort)
                            }
                        }
                    }
                    IssuedKind::Query => unreachable!(),
                }
            })();
            match r {
                Ok(Some(old)) => match tx.commit(ctx) {
                    Ok(()) => Some(old),
                    Err(Abort) => {
                        ctx.stm_abort();
                        None
                    }
                },
                Ok(None) => {
                    tx.rollback(ctx);
                    ctx.version_conflict();
                    None
                }
                Err(Abort) => {
                    tx.rollback(ctx);
                    if !need_smo {
                        ctx.stm_abort();
                    }
                    None
                }
            }
        };
        ctx.set_phase(outer);
        match attempt {
            Some(old) => return old,
            None => {
                if need_smo {
                    // Structure change required: jump straight to the
                    // STM-protected path, which can split or merge.
                    retries = opts.retry_threshold;
                } else {
                    retries += 1;
                    // Per §5, a conflicted horizontal traversal retries
                    // vertically.
                    loc.invalidate();
                    ctx.charge_cycles(50 * retries as u64);
                }
            }
        }
    }
}

/// Work items that expose the key the RF decision needs.
trait HasKey: Sync {
    fn item_key(&self) -> u64;

    /// Key the item's traversal starts at (ranges locate their lower
    /// bound first); used for leaf-run partitioning.
    fn locate_key(&self) -> u64 {
        self.item_key()
    }
}

impl HasKey for QkItem {
    fn item_key(&self) -> u64 {
        match self {
            QkItem::Query { key, .. } => *key,
            // A range touches keys up to its inclusive upper bound.
            QkItem::Range { lo, len, .. } => lo + *len as u64 - 1,
        }
    }

    fn locate_key(&self) -> u64 {
        match self {
            QkItem::Query { key, .. } => *key,
            QkItem::Range { lo, .. } => *lo,
        }
    }
}

impl HasKey for (u32, u64, IssuedKind) {
    fn item_key(&self) -> u64 {
        self.1
    }
}

/// Launches `items` over iteration warps: contiguous blocks of request
/// groups per warp, so adjacent RGs share a [`WarpLocator`] buffer (§5).
///
/// With a pivot cache (`pivot = Some`), request groups are *leaf runs* —
/// maximal ascending-key groups targeting the same leaf under the
/// snapshot's fences — so each group pays one descent and applies the
/// rest of its items in-leaf; without one, groups are fixed-size RG
/// blocks (`opts.rg_size`), the per-request baseline.
fn launch_grouped<T: HasKey>(
    device: &Device,
    _handle: &TreeHandle,
    opts: &ExecOptions,
    items: &[T],
    pivot: Option<&PivotCache>,
    name: &str,
    body: impl Fn(&mut eirene_sim::WarpCtx<'_>, &mut WarpLocator<'_>, &T) + Sync,
) -> KernelStats {
    let n = items.len();
    if n == 0 {
        return KernelStats {
            name: name.to_string(),
            ..Default::default()
        };
    }
    let target = if opts.target_warps > 0 {
        opts.target_warps
    } else {
        device.config().resident_warps().max(1)
    };
    // Group boundaries: leaf runs under coalesced dispatch, fixed-size RG
    // blocks otherwise.
    let rg = opts.rg_size.max(1);
    let groups: Vec<(usize, usize)> = match pivot {
        Some(cache) => {
            let keys: Vec<u64> = items.iter().map(|t| t.locate_key()).collect();
            partition_leaf_runs(&keys, cache.leaf_fences())
        }
        None => (0..n.div_ceil(rg))
            .map(|g| (g * rg, ((g + 1) * rg).min(n)))
            .collect(),
    };
    // Spread contiguous group blocks over the iteration warps, balanced
    // by item count (leaf runs vary in size; fixed RGs reduce to the old
    // contiguous-block split).
    let items_per_warp = match pivot {
        Some(_) => n.div_ceil(target).max(1),
        None => groups.len().div_ceil(target).max(1) * rg,
    };
    let mut warp_groups: Vec<(usize, usize)> = Vec::new();
    let mut glo = 0usize;
    let mut acc = 0usize;
    for (g, &(lo, hi)) in groups.iter().enumerate() {
        acc += hi - lo;
        if acc >= items_per_warp {
            warp_groups.push((glo, g + 1));
            glo = g + 1;
            acc = 0;
        }
    }
    if glo < groups.len() {
        warp_groups.push((glo, groups.len()));
    }
    let coalesced = pivot.is_some();
    device.launch(name, warp_groups.len(), |wid, ctx| {
        let mut loc = WarpLocator::with_cache(opts.locality, pivot);
        let (wg_lo, wg_hi) = warp_groups[wid];
        for &(lo, hi) in &groups[wg_lo..wg_hi] {
            // RF decision per group uses the group's maximal key (§5);
            // keys are ascending, so it is the last item's key.
            loc.begin_rg(items[hi - 1].item_key());
            for (i, item) in items[lo..hi].iter().enumerate() {
                let verticals_before = ctx.stats.vertical_traversals;
                body(ctx, &mut loc, item);
                // A run-mate that finished without a fresh vertical
                // traversal rode the run's descent: an upper-level walk
                // the per-request baseline would have paid.
                if coalesced && i > 0 && ctx.stats.vertical_traversals == verticals_before {
                    ctx.stats.descents_saved += 1;
                }
            }
        }
    })
}

/// Result calculation (Alg. 1 line 6, RESULT_CAL): resolves every point
/// request from its run's dependence chain and patches range slots from
/// artificial queries. Runs on the host in parallel; the modelled device
/// cost is a streaming pass over the batch.
fn resolve(
    batch: &Batch,
    plan: &CombinePlan,
    old_vals: &[AtomicU64],
    responses: &ResponseBuf,
    range_results: &[parking_lot_free::SlotVec],
) -> PrimCost {
    use rayon::prelude::*;
    plan.runs.par_iter().enumerate().for_each(|(run_i, run)| {
        resolve_run(batch, plan, run_i, run, old_vals, responses, range_results);
    });
    PrimCost::streaming(
        &eirene_sim::DeviceConfig::default(),
        batch.len() as u64,
        1,
        4,
    )
}

/// State of a key while replaying its run in timestamp order.
#[derive(Clone, Copy)]
enum KeyState {
    /// No state-changing op seen yet: queries observe the old value.
    Old,
    Deleted,
    Value(u32),
}

fn resolve_run(
    batch: &Batch,
    plan: &CombinePlan,
    run_i: usize,
    run: &Run,
    old_vals: &[AtomicU64],
    responses: &ResponseBuf,
    range_results: &[parking_lot_free::SlotVec],
) {
    let old = old_vals[run_i].load(Ordering::Relaxed);
    let reqs = &plan.point_sorted[run.start as usize..(run.start + run.len) as usize];
    let arts: &[Artificial] = &plan.run_art[run_i];
    let mut state = KeyState::Old;
    let mut ai = 0usize;
    let value_at = |state: KeyState| -> u64 {
        match state {
            KeyState::Old => old,
            KeyState::Deleted => NO_VALUE,
            KeyState::Value(v) => v as u64,
        }
    };
    for &orig in reqs {
        let req = &batch.requests[orig as usize];
        // Artificial queries with earlier timestamp *ranks* resolve first.
        // Ranks (position in the `(ts, batch index)` order) rather than raw
        // timestamps: on an equal timestamp, the request earlier in the
        // batch wins, exactly as the oracle's stable sort orders it. A raw
        // `ts <` comparison would resolve an equal-ts artificial query
        // after the point request and hand the range the *new* value.
        while ai < arts.len() && arts[ai].rank < plan.rank[orig as usize] {
            let a = &arts[ai];
            range_results[a.range_idx as usize].set(a.offset as usize, value_at(state));
            ai += 1;
        }
        match req.op {
            OpKind::Query => {
                let v = value_at(state);
                responses.set(
                    orig as usize,
                    Response::Value((v != NO_VALUE).then_some(v as u32)),
                );
            }
            OpKind::Upsert(v) => {
                state = KeyState::Value(v);
                responses.set(orig as usize, Response::Done);
            }
            OpKind::Delete => {
                state = KeyState::Deleted;
                responses.set(orig as usize, Response::Done);
            }
            OpKind::Range { .. } => unreachable!("ranges are not in runs"),
        }
    }
    while ai < arts.len() {
        let a = &arts[ai];
        range_results[a.range_idx as usize].set(a.offset as usize, value_at(state));
        ai += 1;
    }
}

/// Minimal lock-free helpers local to this module.
mod parking_lot_free {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A fixed-size vector of atomically-written u64 slots (NO_VALUE =
    /// empty), used for range-query result assembly across warps and the
    /// resolution pass.
    pub struct SlotVec {
        slots: Vec<AtomicU64>,
    }

    impl SlotVec {
        pub fn new(len: usize) -> Self {
            SlotVec {
                slots: (0..len).map(|_| AtomicU64::new(u64::MAX)).collect(),
            }
        }

        pub fn set(&self, idx: usize, v: u64) {
            self.slots[idx].store(v, Ordering::Relaxed);
        }

        pub fn snapshot(&self) -> Vec<u64> {
            self.slots
                .iter()
                .map(|s| s.load(Ordering::Relaxed))
                .collect()
        }
    }
}
