//! Property tests for the serving layer's shard router ([`ShardMap`]):
//! every key routes to exactly one shard, the shards tile the full `u32`
//! key domain with no gaps or overlaps at range boundaries, the edge keys
//! `Key::MIN`/`Key::MAX` are addressable, and split ranges reassemble the
//! original window exactly — plus the hash-scatter router ([`hash_shard`])
//! and the differential property that a hash-scattered service's
//! scatter-gather range merge equals the range-sharded merge. Maps are
//! generated from seeded strategies — no external dependencies beyond the
//! workspace proptest shim.

use eirene_check::fuzz_shard_map;
use eirene_serve::{hash_shard, Outcome, ServeConfig, Service, ShardMap, Sharding, Ticket};
use eirene_workloads::{Key, OpKind};
use proptest::prelude::*;

/// Arbitrary shard maps: 1..=12 shards with arbitrary interior boundaries.
fn map_strategy() -> impl Strategy<Value = ShardMap> {
    proptest::collection::vec(any::<u32>(), 0..12).prop_map(|mut starts| {
        starts.sort_unstable();
        starts.dedup();
        starts.retain(|&s| s != 0);
        let mut all = vec![0u32];
        all.extend(starts);
        ShardMap::from_starts(all).expect("valid shard starts")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn prop_every_key_routes_to_exactly_one_shard(
        map in map_strategy(),
        key in any::<u32>(),
    ) {
        let shard = map.shard_of(key);
        prop_assert!(shard < map.num_shards());
        prop_assert!(map.start_of(shard) <= key && key <= map.end_of(shard));
        // No other shard's range also contains the key (no overlaps).
        for other in 0..map.num_shards() {
            if other != shard {
                prop_assert!(
                    !(map.start_of(other) <= key && key <= map.end_of(other)),
                    "key {} claimed by shards {} and {}", key, shard, other
                );
            }
        }
    }

    #[test]
    fn prop_shards_tile_the_domain_without_gaps(map in map_strategy()) {
        // Edge keys are addressable and land on the outermost shards.
        prop_assert_eq!(map.shard_of(u32::MIN), 0);
        prop_assert_eq!(map.shard_of(u32::MAX), map.num_shards() - 1);
        prop_assert_eq!(map.start_of(0), 0);
        prop_assert_eq!(map.end_of(map.num_shards() - 1), u32::MAX);
        // Adjacent shard ranges abut exactly: no gap, no overlap.
        for s in 0..map.num_shards() - 1 {
            prop_assert_eq!(map.end_of(s) as u64 + 1, map.start_of(s + 1) as u64);
        }
        // Each interior boundary starts a new shard; its predecessor key
        // still belongs to the previous shard.
        for (i, b) in map.boundaries().into_iter().enumerate() {
            prop_assert_eq!(map.shard_of(b), i + 1);
            prop_assert_eq!(map.shard_of(b - 1), i);
        }
    }

    #[test]
    fn prop_split_ranges_tile_the_window(
        map in map_strategy(),
        lo in any::<u32>(),
        len in 0u32..5000,
    ) {
        let parts = map.split_range(lo, len);
        if len == 0 {
            prop_assert!(parts.is_empty());
            return Ok(());
        }
        // The window is clipped at the domain edge, matching the oracle's
        // checked_add semantics.
        let hi = lo.saturating_add(len - 1) as u64;
        let mut expect_lo = lo as u64;
        for p in &parts {
            prop_assert_eq!(p.lo as u64, expect_lo, "parts must be contiguous");
            prop_assert_eq!(p.offset as u64, p.lo as u64 - lo as u64);
            prop_assert!(p.len >= 1);
            let p_hi = p.lo as u64 + p.len as u64 - 1;
            // Each part lies entirely inside its shard.
            prop_assert_eq!(map.shard_of(p.lo), p.shard);
            prop_assert!(p_hi <= map.end_of(p.shard) as u64);
            expect_lo = p_hi + 1;
        }
        // The parts sum to the clipped window exactly and end at its edge.
        let total: u64 = parts.iter().map(|p| p.len as u64).sum();
        prop_assert_eq!(total, hi - lo as u64 + 1);
        prop_assert_eq!(expect_lo, hi + 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_hash_shard_is_total_and_stable(
        key in any::<u32>(),
        shards in 1usize..64,
    ) {
        let s = hash_shard(key, shards);
        prop_assert!(s < shards);
        // Routing is a pure function of (key, shards): the same key must
        // land on the same shard every time, or point ops would desync.
        prop_assert_eq!(s, hash_shard(key, shards));
    }
}

/// Differential property: the same operation stream through a
/// hash-scattered service and a range-sharded service must produce
/// identical responses and final contents — in particular every range
/// query's all-shard scatter-gather union must equal the range-sharded
/// positional merge.
#[test]
fn hash_scatter_gather_matches_the_range_sharded_merge() {
    let pairs: Vec<(u64, u64)> = (0..600u64).map(|i| (i * 7, i + 1)).collect();
    // Mixed stream: point churn plus windows that straddle the range
    // map's boundaries (so both routers actually split them).
    let mut ops: Vec<(Key, OpKind)> = Vec::new();
    for i in 0..200u32 {
        ops.push((i * 11 % 4200, OpKind::Upsert(i)));
        ops.push((i * 13 % 4200, OpKind::Query));
        if i % 5 == 0 {
            ops.push((i * 17 % 4200, OpKind::Delete));
        }
        if i % 7 == 0 {
            ops.push((i * 19 % 4200, OpKind::Range { len: 1 + i % 300 }));
        }
    }
    let run = |sharding: Sharding| {
        let cfg = ServeConfig {
            map: fuzz_shard_map(4, 4200),
            sharding,
            hold_gate: true,
            ..ServeConfig::test_small(4)
        };
        let svc = Service::new(&pairs, cfg);
        let client = svc.client();
        let tickets: Vec<Ticket> = ops.iter().map(|&(k, op)| client.submit(k, op)).collect();
        svc.release();
        let report = svc.shutdown();
        let outcomes: Vec<Outcome> = tickets.iter().map(|t| t.wait()).collect();
        (outcomes, report.contents())
    };
    let (range_out, range_contents) = run(Sharding::Range);
    let (hash_out, hash_contents) = run(Sharding::Hash);
    assert_eq!(range_out, hash_out);
    assert_eq!(range_contents, hash_contents);
}

#[test]
fn uniform_maps_have_the_requested_shard_count() {
    for shards in [1, 2, 3, 4, 5, 8, 13, 64] {
        let map = ShardMap::uniform(shards);
        assert_eq!(map.num_shards(), shards);
        assert_eq!(map.shard_of(u32::MIN), 0);
        assert_eq!(map.shard_of(u32::MAX), shards - 1);
    }
}

#[test]
fn fuzzer_map_keeps_boundaries_inside_the_generation_domain() {
    let map = fuzz_shard_map(4, 4096);
    assert!(map.boundaries().iter().all(|&b| b > 0 && b <= 4096));
    assert_eq!(map.num_shards(), 4);
}
