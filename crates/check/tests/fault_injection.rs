//! Acceptance: the fuzz harness, pointed at a deliberately injected
//! off-by-one, finds the violation and shrinks it to ≤ 8 requests.

use eirene_check::{FaultSpec, FuzzOptions, FuzzOutcome, FuzzTree, Violation};

#[test]
fn harness_finds_and_shrinks_injected_off_by_one() {
    let opts = FuzzOptions {
        seed: 7,
        batches: 50,
        batch_size: 128,
        domain: 1024,
        initial_keys: 1024,
        trees: vec![FuzzTree::Eirene],
        deterministic: false,
        fault: Some(FaultSpec {
            key_mod: 64,
            residue: 7,
        }),
        repro: None,
    };
    let failure = match eirene_check::run_fuzz(&opts) {
        FuzzOutcome::Failed(f) => f,
        FuzzOutcome::Passed { cases } => {
            panic!("fuzzer missed the injected off-by-one across {cases} cases")
        }
    };
    assert!(
        failure.shrunk.len() <= 8,
        "reproducer not minimal: {} requests\n{failure}",
        failure.shrunk.len()
    );
    match &failure.violation {
        Violation::Response { request, .. } => {
            assert_eq!(
                request.key % 64,
                7,
                "shrunk violation should isolate a faulted key\n{failure}"
            );
        }
        other => panic!("expected a response violation, got {other:?}"),
    }
    // The report must carry everything needed to replay the case.
    let report = failure.to_string();
    assert!(report.contains("batch seed"));
    assert!(report.contains("minimal reproducer"));
}

#[test]
fn harness_also_fires_under_deterministic_scheduling() {
    let opts = FuzzOptions {
        seed: 11,
        batches: 20,
        batch_size: 96,
        domain: 512,
        initial_keys: 512,
        trees: vec![FuzzTree::EireneCombining],
        deterministic: true,
        fault: Some(FaultSpec {
            key_mod: 32,
            residue: 3,
        }),
        repro: None,
    };
    match eirene_check::run_fuzz(&opts) {
        FuzzOutcome::Failed(f) => {
            assert!(
                f.device_seed.is_some(),
                "deterministic runs report the seed"
            );
            assert!(f.shrunk.len() <= 8, "reproducer not minimal:\n{f}");
        }
        FuzzOutcome::Passed { cases } => {
            panic!("fuzzer missed the injected fault across {cases} cases")
        }
    }
}
