//! Acceptance: the same `(seed, workload)` pair under the deterministic
//! scheduler yields bit-identical responses, schedules, and KernelStats.

use eirene_check::{adversarial_batch, build_tree, dense_pairs, FuzzTree, GenOptions, Profile};
use eirene_sim::{DeviceConfig, KernelStats, ScheduleLog};
use eirene_workloads::Response;

fn one_run(device_seed: u64, batch_seed: u64) -> (Vec<Response>, KernelStats, String) {
    let pairs = dense_pairs(512);
    let opts = GenOptions {
        batch_size: 192,
        domain: 1024,
    };
    let batch = adversarial_batch(batch_seed, Profile::Skewed, &opts);
    let cfg = DeviceConfig::test_small().with_deterministic_sched(device_seed);
    let mut tree = build_tree(FuzzTree::Eirene, &pairs, cfg, 1 << 12);
    let run = tree.run_batch(&batch);
    let log = tree.device().take_schedule_log().serialize();
    (run.responses, run.stats, log)
}

#[test]
fn same_seed_same_workload_is_bit_identical() {
    let (r1, s1, l1) = one_run(0xD5EED, 0xBA7C4);
    let (r2, s2, l2) = one_run(0xD5EED, 0xBA7C4);
    assert_eq!(r1, r2, "responses must be bit-identical");
    assert_eq!(s1, s2, "KernelStats must be bit-identical");
    assert_eq!(l1, l2, "captured schedules must be bit-identical");
    assert!(
        !l1.is_empty(),
        "deterministic launches must capture schedules"
    );
}

#[test]
fn captured_schedule_log_round_trips_and_replays() {
    let (r1, s1, l1) = one_run(0xD5EED, 0xBA7C4);
    let log = ScheduleLog::parse(&l1).expect("serialized log must parse");

    // Replay the captured schedule on a fresh device: identical run.
    let pairs = dense_pairs(512);
    let opts = GenOptions {
        batch_size: 192,
        domain: 1024,
    };
    let batch = adversarial_batch(0xBA7C4, Profile::Skewed, &opts);
    // Different PRNG seed: the replay log, not the seed, drives stepping.
    let cfg = DeviceConfig::test_small().with_deterministic_sched(0);
    let mut tree = build_tree(FuzzTree::Eirene, &pairs, cfg, 1 << 12);
    tree.device().set_replay_log(log);
    let run = tree.run_batch(&batch);
    assert_eq!(run.responses, r1);
    assert_eq!(run.stats, s1);
}

#[test]
fn different_device_seeds_still_agree_on_responses() {
    // Responses are schedule-independent (that is the linearizability
    // claim); stats may differ because conflict counts depend on the
    // interleaving.
    let (r1, _, l1) = one_run(1, 0xBA7C4);
    let (r2, _, l2) = one_run(2, 0xBA7C4);
    assert_eq!(r1, r2, "responses must not depend on the schedule");
    assert_ne!(l1, l2, "different seeds should explore different schedules");
}
