//! Deliberate fault injection: a wrapper that corrupts a tree's responses
//! so the fuzz harness can be tested end-to-end.
//!
//! A differential fuzzer that has never caught anything gives no evidence
//! it *can*. Wrapping a correct tree in [`FaultyTree`] plants a precise,
//! seed-independent off-by-one; the harness must find it and shrink the
//! triggering batch to a minimal reproducer (the acceptance test in
//! `tests/fault_injection.rs` requires ≤ 8 requests).

use eirene_baselines::common::{BatchRun, ConcurrentTree};
use eirene_btree::build::TreeHandle;
use eirene_sim::Device;
use eirene_workloads::{Batch, Response};

/// Which responses to corrupt: point-query results for keys congruent to
/// `residue` modulo `key_mod` come back off by one.
#[derive(Clone, Copy, Debug)]
pub struct FaultSpec {
    pub key_mod: u32,
    pub residue: u32,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            key_mod: 64,
            residue: 7,
        }
    }
}

impl FaultSpec {
    fn triggers(&self, key: u32) -> bool {
        key % self.key_mod.max(1) == self.residue
    }
}

/// A tree whose point-query responses are off by one for the keys the
/// [`FaultSpec`] selects. The tree itself is untouched — only the reported
/// responses lie, exactly like a result-calculation bug would.
pub struct FaultyTree {
    inner: Box<dyn ConcurrentTree>,
    spec: FaultSpec,
}

impl FaultyTree {
    pub fn new(inner: Box<dyn ConcurrentTree>, spec: FaultSpec) -> Self {
        FaultyTree { inner, spec }
    }
}

impl ConcurrentTree for FaultyTree {
    fn run_batch(&mut self, batch: &Batch) -> BatchRun {
        let mut run = self.inner.run_batch(batch);
        for (req, resp) in batch.requests.iter().zip(run.responses.iter_mut()) {
            if self.spec.triggers(req.key) {
                if let Response::Value(Some(v)) = resp {
                    *v = v.wrapping_add(1);
                }
            }
        }
        run
    }

    fn device(&self) -> &Device {
        self.inner.device()
    }

    fn handle(&self) -> &TreeHandle {
        self.inner.handle()
    }

    fn name(&self) -> &'static str {
        "faulty"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::{build_tree, FuzzTree};
    use crate::gen::dense_pairs;
    use eirene_sim::DeviceConfig;
    use eirene_workloads::Request;

    #[test]
    fn fault_perturbs_only_selected_queries() {
        let pairs = dense_pairs(256);
        let spec = FaultSpec {
            key_mod: 64,
            residue: 7,
        };
        let mut tree = FaultyTree::new(
            build_tree(
                FuzzTree::Eirene,
                &pairs,
                DeviceConfig::test_small(),
                1 << 12,
            ),
            spec,
        );
        let batch = Batch::new(vec![Request::query(7, 0), Request::query(8, 1)]);
        let got = tree.run_batch(&batch).responses;
        // Key 7 maps to 8 but the fault reports 9; key 8 is untouched.
        assert_eq!(got[0], Response::Value(Some(9)));
        assert_eq!(got[1], Response::Value(Some(9)));
        // ^ key 8 genuinely maps to 9 (dense_pairs maps k -> k+1): the
        // faulty and honest answers coincide here by construction, which
        // is exactly why the harness needs the oracle to tell them apart.
        let mut honest = build_tree(
            FuzzTree::Eirene,
            &pairs,
            DeviceConfig::test_small(),
            1 << 12,
        );
        let want = honest.run_batch(&batch).responses;
        assert_ne!(got[0], want[0]);
        assert_eq!(got[1], want[1]);
    }
}
