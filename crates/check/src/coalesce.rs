//! Coalescing fuzz leg: adversarial batches aimed at the combine-path
//! machinery — sorted-plan leaf runs and the snapshot pivot cache.
//!
//! The single-batch fuzzer already covers linearizability in general; this
//! leg targets the failure surfaces coalescing adds:
//!
//! * **Duplicate-key / equal-timestamp clusters**: long same-key runs make
//!   whole leaf-run groups collapse onto one descent, and colliding
//!   timestamps make correctness depend on the batch-position tie-break
//!   surviving the regrouping (a reordered run would linearize wrong).
//! * **Range-straddling-run batches**: range queries whose windows span
//!   several leaf-run groups, so the horizontal leaf-chain walk crosses
//!   the partition the planner chose.
//! * **Pivot-cache invalidation**: a mixed round builds the cache, a
//!   split-heavy round (dense upserts into a previously empty key region)
//!   allocates nodes and invalidates the snapshot, and a query round then
//!   reads both the old and the freshly split regions — a stale frontier
//!   or fence set would misroute exactly here.
//!
//! Every round runs against one persistent coalesced tree, one persistent
//! coalesce-disabled twin, and one flat [`SequentialOracle`]: responses
//! are checked positionally against the oracle for *both* trees, final
//! contents and structure are validated, and the case additionally asserts
//! the machinery actually fired (cache rebuilds after the split round,
//! cache hits in the query round) so a silently disabled combine path
//! cannot pass.

use crate::diff::Violation;
use crate::gen::{dense_pairs, GenOptions};
use eirene_baselines::common::ConcurrentTree;
use eirene_core::{EireneOptions, EireneTree};
use eirene_sim::DeviceConfig;
use eirene_workloads::{Batch, OpKind, Oracle, Request, SequentialOracle};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration of one coalescing fuzz run.
#[derive(Clone, Debug)]
pub struct CoalesceOptions {
    /// Master seed; per-case seeds derive from it.
    pub seed: u64,
    /// Cases (fresh tree pair + one round sequence) to run.
    pub cases: usize,
    /// Requests per round.
    pub batch_size: usize,
    /// Key domain of the mixed/query rounds; the split round upserts into
    /// `domain+1 ..= domain+batch_size` (kept empty by the others).
    pub domain: u32,
    /// Keys pre-loaded into every fresh tree (`1..=initial_keys`).
    pub initial_keys: u32,
    /// Run devices under the seeded deterministic scheduler.
    pub deterministic: bool,
    /// Replay mode: use this value directly as the case seed and run one
    /// case — the round sequence regenerates bit-for-bit.
    pub repro: Option<u64>,
}

impl Default for CoalesceOptions {
    fn default() -> Self {
        CoalesceOptions {
            seed: 0xC0A1E5CE,
            cases: 200,
            batch_size: 256,
            domain: 4096,
            initial_keys: 1024,
            deterministic: false,
            repro: None,
        }
    }
}

/// The fixed round sequence every case runs: build the cache, invalidate
/// it with splits, then read through the rebuilt snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoundKind {
    /// Duplicate-key clusters with colliding timestamps plus straddling
    /// ranges over the pre-loaded domain. Builds (and exercises) the
    /// pivot cache.
    Mixed,
    /// Dense upserts into the empty region above `domain`: forces leaf
    /// splits, which allocate nodes and invalidate the snapshot.
    SplitHeavy,
    /// Point and straddling range reads over BOTH regions, dispatched
    /// through the freshly rebuilt cache.
    QueryHeavy,
}

impl RoundKind {
    /// Round order within a case. `Mixed` runs twice so the cache is
    /// exercised both before and after the invalidation cycle.
    pub const SEQUENCE: [RoundKind; 4] = [
        RoundKind::Mixed,
        RoundKind::SplitHeavy,
        RoundKind::QueryHeavy,
        RoundKind::Mixed,
    ];
}

/// How a coalescing case failed.
#[derive(Clone, Debug)]
pub enum CoalesceViolation {
    /// A tree diverged from the oracle (response/structure/contents).
    Differential {
        round: usize,
        /// Which twin diverged: true for the coalesced tree.
        coalesced: bool,
        violation: Violation,
    },
    /// The coalesced and uncoalesced twins disagreed with each other
    /// (caught even if both happen to agree with the oracle on responses
    /// but drift in contents).
    Divergence { round: usize, detail: String },
    /// The combine path never fired: the counters that prove the cache
    /// was built, invalidated, rebuilt, and hit stayed flat.
    MachineryIdle { detail: String },
}

impl std::fmt::Display for CoalesceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoalesceViolation::Differential {
                round,
                coalesced,
                violation,
            } => write!(
                f,
                "round {round} ({} tree): {violation}",
                if *coalesced {
                    "coalesced"
                } else {
                    "uncoalesced"
                }
            ),
            CoalesceViolation::Divergence { round, detail } => {
                write!(f, "round {round}: twins diverged: {detail}")
            }
            CoalesceViolation::MachineryIdle { detail } => {
                write!(f, "combine path never fired: {detail}")
            }
        }
    }
}

/// A coalescing-fuzz-found violation. Cases are round sequences against
/// persistent trees, so the seed replays the whole case instead of a
/// ddmin shrink.
#[derive(Clone, Debug)]
pub struct CoalesceFailure {
    pub case: usize,
    pub case_seed: u64,
    pub violation: CoalesceViolation,
    /// Self-contained `eirene-bench fuzz --coalesce` replay command.
    pub replay: String,
}

impl std::fmt::Display for CoalesceFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "coalescing violation (case {}, case seed {:#x})",
            self.case, self.case_seed
        )?;
        writeln!(f, "  {}", self.violation)?;
        write!(f, "  replay: {}", self.replay)
    }
}

/// Result of a coalescing fuzz run.
#[derive(Debug)]
pub enum CoalesceOutcome {
    Passed {
        /// Total cases executed.
        cases: usize,
        /// Cache hits accumulated across all cases' coalesced trees — a
        /// coverage signal the CLI prints.
        cache_hits: u64,
    },
    Failed(Box<CoalesceFailure>),
}

/// SplitMix64 step (same scheme as the other harnesses).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Generates one round's batch (deterministic in `(seed, kind, opts)`).
pub fn coalesce_batch(seed: u64, kind: RoundKind, opts: &GenOptions) -> Batch {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = opts.batch_size;
    let mut reqs: Vec<Request> = Vec::with_capacity(n);
    match kind {
        RoundKind::Mixed => {
            // Clusters of 2..=12 requests on one key sharing one raw
            // timestamp: a whole cluster lands in one leaf run and its
            // internal order is purely the batch-position tie-break.
            let mut cluster = 0u64;
            while reqs.len() < n {
                let key = rng.gen_range(0..=opts.domain);
                let size = rng.gen_range(2..=12usize).min(n - reqs.len());
                let ts = cluster;
                cluster += 1;
                for _ in 0..size {
                    let op = match rng.gen_range(0..10u32) {
                        0..=3 => OpKind::Upsert(rng.gen()),
                        4 => OpKind::Delete,
                        // Long windows: straddle several leaf runs.
                        5..=6 => OpKind::Range {
                            len: rng.gen_range(16..=64u32),
                        },
                        _ => OpKind::Query,
                    };
                    reqs.push(Request { key, op, ts });
                }
            }
        }
        RoundKind::SplitHeavy => {
            // Dense fresh keys above the domain; every leaf in the region
            // fills and splits. Unique ascending timestamps.
            for i in 0..n {
                let key = opts.domain + 1 + rng.gen_range(0..n as u32);
                reqs.push(Request {
                    key,
                    op: OpKind::Upsert(rng.gen()),
                    ts: i as u64,
                });
            }
        }
        RoundKind::QueryHeavy => {
            // Reads over both regions; half the ranges start just under
            // the old/new boundary so the window straddles it.
            for i in 0..n {
                let key = if rng.gen_bool(0.5) {
                    rng.gen_range(0..=opts.domain)
                } else {
                    opts.domain.saturating_sub(32) + rng.gen_range(0..64u32)
                };
                let op = if rng.gen_range(0..4u32) == 0 {
                    OpKind::Range {
                        len: rng.gen_range(16..=64u32),
                    }
                } else {
                    OpKind::Query
                };
                reqs.push(Request {
                    key,
                    op,
                    ts: i as u64,
                });
            }
        }
    }
    Batch::new(reqs)
}

/// Builds one Eirene twin over `pairs` with coalescing on or off.
fn build_twin(
    pairs: &[(u64, u64)],
    cfg: DeviceConfig,
    headroom: usize,
    coalesce: bool,
) -> EireneTree {
    EireneTree::new(
        pairs,
        EireneOptions {
            device: cfg,
            headroom_nodes: headroom,
            coalesce,
            ..Default::default()
        },
    )
}

fn check_against_oracle(
    round: usize,
    coalesced: bool,
    batch: &Batch,
    got: &[eirene_workloads::Response],
    want: &[eirene_workloads::Response],
) -> Result<(), CoalesceViolation> {
    for i in 0..batch.len() {
        if got[i] != want[i] {
            return Err(CoalesceViolation::Differential {
                round,
                coalesced,
                violation: Violation::Response {
                    index: i,
                    request: batch.requests[i],
                    got: got[i].clone(),
                    want: want[i].clone(),
                },
            });
        }
    }
    Ok(())
}

/// Runs one coalescing case: the [`RoundKind::SEQUENCE`] against a
/// persistent coalesced tree, its coalesce-disabled twin, and a flat
/// oracle. Returns the coalesced tree's accumulated cache hits.
pub fn run_coalesce_case(opts: &CoalesceOptions, case_seed: u64) -> Result<u64, CoalesceViolation> {
    use eirene_btree::{refops, validate::validate};
    let pairs = dense_pairs(opts.initial_keys);
    let cfg = |salt: u64| {
        if opts.deterministic {
            DeviceConfig::test_small().with_deterministic_sched(mix(case_seed ^ salt))
        } else {
            DeviceConfig::test_small()
        }
    };
    // Headroom covers the split round's fresh region plus churn slack.
    let headroom = (opts.batch_size * 4).max(1 << 12);
    let mut on = build_twin(&pairs, cfg(1), headroom, true);
    let mut off = build_twin(&pairs, cfg(2), headroom, false);
    let pairs32: Vec<(u32, u32)> = pairs.iter().map(|&(k, v)| (k as u32, v as u32)).collect();
    let mut oracle = SequentialOracle::load(&pairs32);
    let gen_opts = GenOptions {
        domain: opts.domain,
        batch_size: opts.batch_size,
    };
    let (mut hits, mut rebuilds, mut saved) = (0u64, 0u64, 0u64);
    for (round, &kind) in RoundKind::SEQUENCE.iter().enumerate() {
        let batch = coalesce_batch(mix(case_seed ^ round as u64), kind, &gen_opts);
        let run_on = on.run_batch(&batch);
        let run_off = off.run_batch(&batch);
        let want = oracle.run_batch(&batch);
        check_against_oracle(round, true, &batch, &run_on.responses, &want)?;
        check_against_oracle(round, false, &batch, &run_off.responses, &want)?;
        hits += run_on.stats.totals.pivot_cache_hits;
        rebuilds += run_on.stats.totals.pivot_cache_rebuilds;
        saved += run_on.stats.totals.descents_saved;
        if run_off.stats.totals.pivot_cache_hits != 0 || run_off.stats.totals.descents_saved != 0 {
            return Err(CoalesceViolation::MachineryIdle {
                detail: "coalesce-disabled twin reported combine-path counters".to_string(),
            });
        }
        // Twin contents must match after every round, not just at the end
        // — a divergence localized to its round shrinks the search space.
        let c_on = refops::contents(on.device().mem(), on.handle());
        let c_off = refops::contents(off.device().mem(), off.handle());
        if c_on != c_off {
            return Err(CoalesceViolation::Divergence {
                round,
                detail: format!(
                    "coalesced tree holds {} keys, uncoalesced holds {}",
                    c_on.len(),
                    c_off.len()
                ),
            });
        }
    }
    let last = RoundKind::SEQUENCE.len() - 1;
    for (coalesced, tree) in [(true, &on), (false, &off)] {
        if let Err(e) = validate(tree.device().mem(), tree.handle()) {
            return Err(CoalesceViolation::Differential {
                round: last,
                coalesced,
                violation: Violation::Structure(e),
            });
        }
    }
    let tree_contents = refops::contents(on.device().mem(), on.handle());
    let oracle_contents: Vec<(u64, u64)> = oracle
        .contents()
        .iter()
        .map(|(&k, &v)| (k as u64, v as u64))
        .collect();
    if tree_contents != oracle_contents {
        return Err(CoalesceViolation::Differential {
            round: last,
            coalesced: true,
            violation: Violation::Contents(format!(
                "tree holds {} keys, oracle holds {}",
                tree_contents.len(),
                oracle_contents.len()
            )),
        });
    }
    // The invalidation cycle must actually have happened: the first round
    // builds the cache, the split round kills it, a later round rebuilds.
    if rebuilds < 2 {
        return Err(CoalesceViolation::MachineryIdle {
            detail: format!("{rebuilds} cache rebuilds across the sequence, expected >= 2"),
        });
    }
    if hits == 0 || saved == 0 {
        return Err(CoalesceViolation::MachineryIdle {
            detail: format!("{hits} cache hits, {saved} descents saved"),
        });
    }
    Ok(hits)
}

fn replay_command(opts: &CoalesceOptions, case_seed: u64) -> String {
    let mut cmd = format!(
        "eirene-bench fuzz --coalesce --batch {} --domain {} \
         --initial-keys {} --repro-seed {case_seed:#x}",
        opts.batch_size, opts.domain, opts.initial_keys,
    );
    if opts.deterministic {
        cmd.push_str(" --deterministic");
    }
    cmd
}

/// Runs the coalescing fuzz loop; stops at the first violation. In replay
/// mode (`repro`) the given seed runs one case.
pub fn run_coalesce_fuzz(opts: &CoalesceOptions) -> CoalesceOutcome {
    let case_seeds: Vec<(usize, u64)> = match opts.repro {
        Some(seed) => vec![(0, seed)],
        None => (0..opts.cases)
            .map(|case| (case, mix(opts.seed ^ mix(case as u64) ^ 0xC0A1)))
            .collect(),
    };
    let mut cache_hits = 0u64;
    for (case, case_seed) in &case_seeds {
        match run_coalesce_case(opts, *case_seed) {
            Ok(hits) => cache_hits += hits,
            Err(violation) => {
                return CoalesceOutcome::Failed(Box::new(CoalesceFailure {
                    case: *case,
                    case_seed: *case_seed,
                    violation,
                    replay: replay_command(opts, *case_seed),
                }))
            }
        }
    }
    CoalesceOutcome::Passed {
        cases: case_seeds.len(),
        cache_hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_opts() -> CoalesceOptions {
        CoalesceOptions {
            cases: 3,
            batch_size: 128,
            domain: 1024,
            initial_keys: 512,
            ..Default::default()
        }
    }

    #[test]
    fn coalesce_fuzz_passes_a_short_run() {
        match run_coalesce_fuzz(&short_opts()) {
            CoalesceOutcome::Passed { cases, cache_hits } => {
                assert_eq!(cases, 3);
                assert!(cache_hits > 0, "cases must exercise the pivot cache");
            }
            CoalesceOutcome::Failed(f) => panic!("unexpected violation:\n{f}"),
        }
    }

    #[test]
    fn coalesce_cases_replay_from_their_seed() {
        let opts = CoalesceOptions {
            deterministic: true,
            ..short_opts()
        };
        let a = run_coalesce_case(&opts, 97).expect("case passes");
        let b = run_coalesce_case(&opts, 97).expect("case passes");
        // Deterministic scheduling: identical cache-hit counts.
        assert_eq!(a, b);
    }

    #[test]
    fn batch_generation_is_deterministic() {
        let o = GenOptions {
            batch_size: 64,
            domain: 512,
        };
        for kind in RoundKind::SEQUENCE {
            assert_eq!(
                coalesce_batch(5, kind, &o).requests,
                coalesce_batch(5, kind, &o).requests,
                "{kind:?}"
            );
        }
    }

    #[test]
    fn mixed_batches_collide_keys_and_timestamps() {
        let o = GenOptions {
            batch_size: 256,
            domain: 1024,
        };
        let b = coalesce_batch(11, RoundKind::Mixed, &o);
        let mut keys: Vec<u32> = b.requests.iter().map(|r| r.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert!(keys.len() < b.len() / 2, "expected duplicate-key clusters");
        let mut ts: Vec<u64> = b.requests.iter().map(|r| r.ts).collect();
        ts.sort_unstable();
        ts.dedup();
        assert!(ts.len() < b.len(), "expected shared timestamps");
        assert!(
            b.requests
                .iter()
                .any(|r| matches!(r.op, OpKind::Range { len } if len >= 16)),
            "expected straddling ranges"
        );
    }
}
