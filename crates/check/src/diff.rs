//! Differential execution: one generated case, one tree, one oracle.

use eirene_baselines::common::ConcurrentTree;
use eirene_baselines::{LockTree, StmTree};
use eirene_btree::refops;
use eirene_btree::validate::validate;
use eirene_core::{EireneOptions, EireneTree, UpdateProtection};
use eirene_sim::DeviceConfig;
use eirene_workloads::{Batch, Oracle, Request, Response, SequentialOracle};

/// The five trees the differential fuzzer exercises: full Eirene, its two
/// ablations (combining without locality, and the fine-grained-lock leaf
/// protection §7 mentions), and the two baseline GB-trees. The NoCc tree
/// is deliberately absent — without concurrency control it is *expected*
/// to lose racing updates, so a differential check against it only
/// measures the generator's conflict rate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuzzTree {
    Eirene,
    EireneCombining,
    EireneLockLeaf,
    Stm,
    Lock,
}

impl FuzzTree {
    pub const ALL: [FuzzTree; 5] = [
        FuzzTree::Eirene,
        FuzzTree::EireneCombining,
        FuzzTree::EireneLockLeaf,
        FuzzTree::Stm,
        FuzzTree::Lock,
    ];

    pub fn label(self) -> &'static str {
        match self {
            FuzzTree::Eirene => "eirene",
            FuzzTree::EireneCombining => "eirene-combining",
            FuzzTree::EireneLockLeaf => "eirene-lockleaf",
            FuzzTree::Stm => "stm",
            FuzzTree::Lock => "lock",
        }
    }

    pub fn parse(s: &str) -> Option<FuzzTree> {
        FuzzTree::ALL.into_iter().find(|t| t.label() == s)
    }

    /// Whether the tree is linearizable under arbitrary key conflicts.
    /// The Eirene variants are (combining orders same-key requests by
    /// timestamp); the baselines resolve same-key races in lock or commit
    /// order, so they are only checked on key-disjoint batches.
    pub fn linearizable(self) -> bool {
        matches!(
            self,
            FuzzTree::Eirene | FuzzTree::EireneCombining | FuzzTree::EireneLockLeaf
        )
    }
}

/// Builds a fresh instance of the selected tree over `pairs`.
pub fn build_tree(
    sel: FuzzTree,
    pairs: &[(u64, u64)],
    cfg: DeviceConfig,
    headroom: usize,
) -> Box<dyn ConcurrentTree> {
    match sel {
        FuzzTree::Stm => Box::new(StmTree::new(pairs, cfg, headroom)),
        FuzzTree::Lock => Box::new(LockTree::new(pairs, cfg, headroom)),
        sel => {
            let opts = EireneOptions {
                device: cfg,
                locality: sel != FuzzTree::EireneCombining,
                headroom_nodes: headroom,
                protection: if sel == FuzzTree::EireneLockLeaf {
                    UpdateProtection::FineGrainedLocks
                } else {
                    UpdateProtection::OptimisticStm
                },
                ..Default::default()
            };
            Box::new(EireneTree::new(pairs, opts))
        }
    }
}

/// How a differential case failed.
#[derive(Clone, Debug)]
pub enum Violation {
    /// A response diverged from the oracle's.
    Response {
        index: usize,
        request: Request,
        got: Response,
        want: Response,
    },
    /// `btree::validate` rejected the post-batch structure.
    Structure(String),
    /// Responses matched but the final key/value contents diverged.
    Contents(String),
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Response {
                index,
                request,
                got,
                want,
            } => write!(
                f,
                "response {index} diverges for {request:?}: got {got:?}, oracle says {want:?}"
            ),
            Violation::Structure(e) => write!(f, "structural invariant violated: {e}"),
            Violation::Contents(e) => write!(f, "final contents diverge: {e}"),
        }
    }
}

/// Runs `reqs` as one batch on a fresh `sel` tree built over `pairs` and
/// checks it against a fresh sequential oracle: positional response
/// equality, then `btree::validate`, then final-contents equality.
///
/// A fresh tree per case keeps every reproducer self-contained: replaying
/// a failure needs only `(tree, pairs, requests)` — plus the device seed
/// when the config schedules deterministically.
pub fn check_case(
    sel: FuzzTree,
    pairs: &[(u64, u64)],
    cfg: &DeviceConfig,
    headroom: usize,
    reqs: &[Request],
) -> Result<(), Violation> {
    let mut tree = build_tree(sel, pairs, cfg.clone(), headroom);
    check_tree_case(tree.as_mut(), pairs, reqs)
}

/// [`check_case`] against an already-built tree (used by the harness to
/// interpose the [fault injector](crate::fault::FaultyTree)). The tree
/// must be fresh and loaded with exactly `pairs`.
pub fn check_tree_case(
    tree: &mut dyn ConcurrentTree,
    pairs: &[(u64, u64)],
    reqs: &[Request],
) -> Result<(), Violation> {
    let pairs32: Vec<(u32, u32)> = pairs.iter().map(|&(k, v)| (k as u32, v as u32)).collect();
    let mut oracle = SequentialOracle::load(&pairs32);
    let batch = Batch::new(reqs.to_vec());
    let got = tree.run_batch(&batch).responses;
    let want = oracle.run_batch(&batch);
    for i in 0..batch.len() {
        if got[i] != want[i] {
            return Err(Violation::Response {
                index: i,
                request: batch.requests[i],
                got: got[i].clone(),
                want: want[i].clone(),
            });
        }
    }
    validate(tree.device().mem(), tree.handle()).map_err(Violation::Structure)?;
    let tree_contents = refops::contents(tree.device().mem(), tree.handle());
    let oracle_contents: Vec<(u64, u64)> = oracle
        .contents()
        .iter()
        .map(|(&k, &v)| (k as u64, v as u64))
        .collect();
    if tree_contents != oracle_contents {
        let detail = first_contents_diff(&tree_contents, &oracle_contents);
        return Err(Violation::Contents(detail));
    }
    Ok(())
}

fn first_contents_diff(got: &[(u64, u64)], want: &[(u64, u64)]) -> String {
    let n = got.len().min(want.len());
    for i in 0..n {
        if got[i] != want[i] {
            return format!(
                "at sorted position {i}: tree has {:?}, oracle has {:?}",
                got[i], want[i]
            );
        }
    }
    format!("tree holds {} keys, oracle holds {}", got.len(), want.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{adversarial_batch, dense_pairs, disjoint_batch, GenOptions, Profile};

    fn cfg() -> DeviceConfig {
        DeviceConfig::test_small()
    }

    #[test]
    fn all_trees_pass_a_disjoint_case() {
        let pairs = dense_pairs(512);
        let opts = GenOptions {
            batch_size: 128,
            domain: 2048,
        };
        let reqs = disjoint_batch(5, &opts).requests;
        for sel in FuzzTree::ALL {
            check_case(sel, &pairs, &cfg(), 1 << 12, &reqs)
                .unwrap_or_else(|v| panic!("{}: {v}", sel.label()));
        }
    }

    #[test]
    fn linearizable_trees_pass_adversarial_cases() {
        let pairs = dense_pairs(512);
        let opts = GenOptions {
            batch_size: 128,
            domain: 1024,
        };
        for (i, profile) in Profile::ALL.into_iter().enumerate() {
            let reqs = adversarial_batch(40 + i as u64, profile, &opts).requests;
            for sel in FuzzTree::ALL.into_iter().filter(|t| t.linearizable()) {
                check_case(sel, &pairs, &cfg(), 1 << 12, &reqs)
                    .unwrap_or_else(|v| panic!("{} / {profile:?}: {v}", sel.label()));
            }
        }
    }

    #[test]
    fn tree_labels_round_trip() {
        for t in FuzzTree::ALL {
            assert_eq!(FuzzTree::parse(t.label()), Some(t));
        }
        assert_eq!(FuzzTree::parse("nope"), None);
    }
}
