//! Adversarial batch generation for the differential fuzzer.
//!
//! Each [`Profile`] stresses a different failure surface: key skew drives
//! combining and same-leaf contention, boundary keys exercise the fence
//! logic at both ends of the key space, duplicate timestamps exercise the
//! batch-position tie-break of result calculation, overlapping ranges
//! exercise artificial-query patching, and delete-heavy churn exercises
//! leaf underflow paths. Everything is derived from a seed: the same
//! `(seed, profile, options)` triple always yields the same batch.

use eirene_workloads::{Batch, Key, OpKind, Request};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// What kind of adversarial batch to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Uniform keys over the domain, mixed operations.
    Uniform,
    /// Log-uniform (Zipf-like) skew: a handful of hot keys absorb most of
    /// the batch, maximizing run lengths and same-leaf conflicts.
    Skewed,
    /// Heavy use of the extreme keys `0`, `1`, `domain`, `u32::MAX - 1`
    /// and `u32::MAX`.
    Boundary,
    /// Many requests share raw timestamps, so correctness depends on the
    /// batch-position tie-break matching the oracle's stable sort.
    DuplicateTs,
    /// Overlapping range queries interleaved with updates inside their
    /// windows: every range needs artificial-query patching.
    RangeHeavy,
    /// Delete-dominated churn on a small key set: keys flicker between
    /// present and absent within one batch.
    DeleteChurn,
}

impl Profile {
    /// Every profile, in the order the fuzz driver cycles through them.
    pub const ALL: [Profile; 6] = [
        Profile::Uniform,
        Profile::Skewed,
        Profile::Boundary,
        Profile::DuplicateTs,
        Profile::RangeHeavy,
        Profile::DeleteChurn,
    ];
}

/// Size parameters shared by the generators.
#[derive(Clone, Copy, Debug)]
pub struct GenOptions {
    /// Keys are drawn from `0..=domain` (plus `u32::MAX`-side boundary
    /// keys in the boundary profile).
    pub domain: u32,
    /// Requests per batch.
    pub batch_size: usize,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            domain: 4096,
            batch_size: 256,
        }
    }
}

/// Initial tree contents used by the fuzz harness: every key in
/// `1..=keys`, each mapped to `key + 1`. Dense, so point queries against
/// untouched keys have non-trivial answers.
pub fn dense_pairs(keys: u32) -> Vec<(u64, u64)> {
    (1..=keys as u64).map(|k| (k, k + 1)).collect()
}

fn key_for(rng: &mut ChaCha8Rng, profile: Profile, domain: u32) -> Key {
    match profile {
        Profile::Uniform | Profile::DuplicateTs | Profile::RangeHeavy => rng.gen_range(0..=domain),
        Profile::Skewed => {
            // Log-uniform: exponentiate a uniform fraction of the domain's
            // magnitude, yielding a heavy head at small keys.
            let r: f64 = rng.gen_range(0.0..1.0);
            ((domain as f64 + 1.0).powf(r) as u32).min(domain)
        }
        Profile::Boundary => match rng.gen_range(0..8u32) {
            0 => 0,
            1 => 1,
            2 => domain,
            3 => u32::MAX,
            4 => u32::MAX - 1,
            _ => rng.gen_range(0..=domain),
        },
        Profile::DeleteChurn => rng.gen_range(0..16u32) * (domain / 16).max(1),
    }
}

fn op_for(rng: &mut ChaCha8Rng, profile: Profile) -> OpKind {
    let range_len = rng.gen_range(1..=24u32);
    match profile {
        Profile::RangeHeavy => match rng.gen_range(0..10u32) {
            0..=3 => OpKind::Range { len: range_len },
            4..=6 => OpKind::Upsert(rng.gen()),
            7 => OpKind::Delete,
            _ => OpKind::Query,
        },
        Profile::DeleteChurn => match rng.gen_range(0..10u32) {
            0..=3 => OpKind::Delete,
            4..=6 => OpKind::Upsert(rng.gen()),
            7 => OpKind::Range { len: range_len },
            _ => OpKind::Query,
        },
        _ => match rng.gen_range(0..10u32) {
            0..=2 => OpKind::Upsert(rng.gen()),
            3 => OpKind::Delete,
            4 => OpKind::Range { len: range_len },
            _ => OpKind::Query,
        },
    }
}

/// Generates one adversarial batch. Only safe to run against linearizable
/// trees (the Eirene variants): racing requests share keys and timestamps
/// freely.
pub fn adversarial_batch(seed: u64, profile: Profile, opts: &GenOptions) -> Batch {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = opts.batch_size;
    let reqs: Vec<Request> = (0..n)
        .map(|i| {
            let key = key_for(&mut rng, profile, opts.domain);
            let op = op_for(&mut rng, profile);
            // Timestamps are the arrival order, except under DuplicateTs
            // (heavy collisions) and a low background collision rate in
            // every profile (two requests share the previous ts).
            let ts = match profile {
                Profile::DuplicateTs => rng.gen_range(0..(n as u64 / 4).max(1)),
                _ if i > 0 && rng.gen_range(0..20u32) == 0 => i as u64 - 1,
                _ => i as u64,
            };
            Request { key, op, ts }
        })
        .collect();
    Batch::new(reqs)
}

/// Generates a batch whose request *footprints* are pairwise disjoint (a
/// range reserves its whole window), in random order with unique
/// timestamps. The STM and Lock baselines only serialize racing requests
/// on the same key, so this is the strongest batch every tree — not just
/// the linearizable ones — must agree on.
pub fn disjoint_batch(seed: u64, opts: &GenOptions) -> Batch {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut keys: Vec<u32> = (0..=opts.domain).collect();
    keys.shuffle(&mut rng);
    let mut used = std::collections::HashSet::new();
    let mut reqs: Vec<Request> = Vec::with_capacity(opts.batch_size);
    for &key in &keys {
        if reqs.len() == opts.batch_size {
            break;
        }
        if used.contains(&key) {
            continue;
        }
        let mut op = op_for(&mut rng, Profile::Uniform);
        if let OpKind::Range { len } = op {
            let fits = (1..len).all(|d| {
                key.checked_add(d)
                    .is_some_and(|k| k <= opts.domain && !used.contains(&k))
            });
            if fits {
                used.extend((1..len).map(|d| key + d));
            } else {
                // Window collides or overflows: degrade to a point read.
                op = OpKind::Query;
            }
        }
        used.insert(key);
        let ts = reqs.len() as u64;
        reqs.push(Request { key, op, ts });
    }
    assert_eq!(
        reqs.len(),
        opts.batch_size,
        "domain too small for a disjoint batch"
    );
    Batch::new(reqs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let o = GenOptions::default();
        for p in Profile::ALL {
            assert_eq!(
                adversarial_batch(9, p, &o).requests,
                adversarial_batch(9, p, &o).requests,
                "{p:?}"
            );
        }
        assert_eq!(
            disjoint_batch(9, &o).requests,
            disjoint_batch(9, &o).requests
        );
    }

    #[test]
    fn boundary_profile_hits_extreme_keys() {
        let o = GenOptions {
            batch_size: 512,
            ..Default::default()
        };
        let b = adversarial_batch(3, Profile::Boundary, &o);
        assert!(b.requests.iter().any(|r| r.key == 0));
        assert!(b.requests.iter().any(|r| r.key == u32::MAX));
    }

    #[test]
    fn duplicate_ts_profile_collides() {
        let o = GenOptions::default();
        let b = adversarial_batch(3, Profile::DuplicateTs, &o);
        let mut ts: Vec<u64> = b.requests.iter().map(|r| r.ts).collect();
        ts.sort_unstable();
        ts.dedup();
        assert!(
            ts.len() < b.len() / 2,
            "expected heavy ts collisions, got {} distinct of {}",
            ts.len(),
            b.len()
        );
    }

    #[test]
    fn disjoint_batch_footprints_do_not_overlap() {
        let o = GenOptions {
            batch_size: 512,
            domain: 8192,
        };
        let b = disjoint_batch(11, &o);
        let mut used = std::collections::HashSet::new();
        for r in &b.requests {
            let span = match r.op {
                OpKind::Range { len } => len,
                _ => 1,
            };
            for d in 0..span {
                assert!(used.insert(r.key + d), "footprint overlap at {}", r.key + d);
            }
        }
    }
}
