//! `eirene-check`: the correctness backstop of the workspace.
//!
//! The paper's central claim (§6) is linearizability — every concurrent
//! batch execution produces exactly the results of a sequential execution
//! in logical-timestamp order. The unit and integration tests check that
//! claim on fixed workloads; this crate *hunts* for violations:
//!
//! * [`gen`] builds adversarial batches: uniform and skewed key mixes,
//!   boundary keys `0`/`u32::MAX`, duplicate and colliding timestamps,
//!   overlapping range queries, delete-heavy churn — plus key-disjoint
//!   batches for the baselines, which only order racing requests on the
//!   *same* key and are therefore not linearizable under key conflicts.
//! * [`diff`] runs one generated case through a tree, compares every
//!   response against the [`SequentialOracle`](eirene_workloads::SequentialOracle),
//!   re-validates the structural invariants with `btree::validate`, and
//!   diffs the final key/value contents.
//! * [`shrink`] reduces a failing batch delta-debugging-style to a minimal
//!   reproducer.
//! * [`harness`] is the fuzz driver wired into `eirene-bench fuzz` and the
//!   CI smoke job; failures print a self-contained reproducer with every
//!   seed needed to replay it.
//! * [`serve`] pushes the same adversarial streams through the sharded
//!   serving layer (`eirene-serve`) — epoch splitting, cross-shard range
//!   merging, shard routing — and shrinks any divergence to a minimal
//!   cross-shard counterexample.
//! * [`churn`] keeps one tree alive across many delete-heavy rounds,
//!   hunting reclamation bugs the per-case-fresh-tree loop cannot see:
//!   merge/borrow rebalancing, epoch-quarantined node reuse, and the
//!   bounded-occupancy (no-leak) property of the slab arena.
//! * [`coalesce`] hammers the combine path: duplicate-key clusters with
//!   colliding timestamps, ranges straddling leaf-run boundaries, and a
//!   build → split-invalidate → rebuild pivot-cache cycle, each round
//!   checked against both the flat oracle and a coalesce-disabled twin.
//! * [`fault`] injects a deliberate off-by-one into a tree's responses so
//!   the harness itself can be tested end-to-end (a fuzzer that never
//!   fires is indistinguishable from a fuzzer that cannot fire).
//!
//! Reproducibility comes from two layers: every batch is generated from a
//! per-iteration seed, and when the harness runs the device in
//! [`SchedMode::Deterministic`](eirene_sim::SchedMode) the warp
//! interleaving itself replays bit-for-bit from the device seed (see
//! `crates/sim/src/sched.rs` and the DESIGN.md section on deterministic
//! scheduling).

pub mod churn;
pub mod coalesce;
pub mod diff;
pub mod fault;
pub mod gen;
pub mod harness;
pub mod serve;
pub mod shrink;

pub use churn::{run_churn_case, run_churn_fuzz, ChurnFailure, ChurnOptions, ChurnOutcome};
pub use coalesce::{
    run_coalesce_case, run_coalesce_fuzz, CoalesceFailure, CoalesceOptions, CoalesceOutcome,
};
pub use diff::{build_tree, check_case, FuzzTree, Violation};
pub use fault::{FaultSpec, FaultyTree};
pub use gen::{adversarial_batch, dense_pairs, disjoint_batch, GenOptions, Profile};
pub use harness::{run_fuzz, FuzzFailure, FuzzOptions, FuzzOutcome};
pub use serve::{
    fuzz_shard_map, run_serve_case, run_serve_fuzz, ServeFuzzFailure, ServeFuzzOptions,
    ServeFuzzOutcome, ServeViolation,
};
pub use shrink::shrink;
