//! Churn fuzzing: sustained delete/insert rounds against ONE persistent
//! tree, exercising merge/borrow rebalancing and slab-arena reclamation.
//!
//! The single-batch fuzzer ([`run_fuzz`](crate::run_fuzz)) builds a fresh
//! tree per case, so retired nodes never outlive a case and a reclamation
//! bug (a leaked orphan, a node recycled under a stale reader, quarantine
//! that never drains) is invisible to it. This leg keeps one tree alive
//! across many [`Profile::DeleteChurn`] batches: keys flicker between
//! present and absent round after round, leaves underflow and merge,
//! merged-away nodes retire into the arena's epoch quarantine, and every
//! batch boundary advances the reclamation epoch. After the last round the
//! case checks, on top of the usual response/structure/contents
//! differential:
//!
//! * **occupancy**: live node blocks stay within a small factor of the
//!   post-build node count — churn over a bounded working set must reach a
//!   steady state where merges + reclamation balance splits, instead of
//!   leaking a node per round;
//! * **drained quarantine**: the batch-boundary epoch advance reclaims
//!   everything retired during the batch, so nothing stays parked.
//!
//! The serve leg ([`run_churn_serve_fuzz`]) pushes the same churn stream
//! through a sharded service with racing submitters and a forced
//! split + merge rebalance, piggybacking on
//! [`run_serve_case`](crate::run_serve_case) (which checks the per-shard
//! arena gauges on every serve-fuzz case).

use crate::diff::{build_tree, FuzzTree, Violation};
use crate::gen::{adversarial_batch, dense_pairs, GenOptions, Profile};
use crate::serve::{fuzz_shard_map, run_serve_case, ServeFuzzOptions, ServeViolation};
use eirene_sim::DeviceConfig;
use eirene_workloads::{Batch, Oracle, Request, SequentialOracle};

/// Configuration of one churn fuzz run.
#[derive(Clone, Debug)]
pub struct ChurnOptions {
    /// Master seed; per-case and per-round batch seeds derive from it.
    pub seed: u64,
    /// Cases (fresh tree + `rounds` consecutive churn batches) to run.
    pub cases: usize,
    /// Churn batches applied to each case's tree, back to back.
    pub rounds: usize,
    /// Requests per round.
    pub batch_size: usize,
    /// Key domain of generated requests.
    pub domain: u32,
    /// Keys pre-loaded into every fresh tree (`1..=initial_keys`).
    pub initial_keys: u32,
    /// Live node blocks after the last round may be at most this factor
    /// times the post-build count (the working set only shrinks under
    /// churn, so any sustained growth is a leak).
    pub occupancy_factor: u64,
    /// Run devices under the seeded deterministic scheduler.
    pub deterministic: bool,
    /// Serve-leg cases appended after the single-tree cases: the same
    /// churn stream through a sharded service with racing submitters and
    /// a forced split + merge rebalance. 0 skips the leg.
    pub serve_cases: usize,
    /// Replay mode: use this value directly as the case seed and run one
    /// single-tree case plus one serve-leg case (when `serve_cases > 0`)
    /// — whichever leg originally failed reproduces bit-for-bit.
    pub repro: Option<u64>,
}

impl Default for ChurnOptions {
    fn default() -> Self {
        ChurnOptions {
            seed: 0xC4124,
            cases: 500,
            rounds: 6,
            batch_size: 192,
            domain: 4096,
            initial_keys: 1024,
            occupancy_factor: 4,
            deterministic: false,
            serve_cases: 8,
            repro: None,
        }
    }
}

/// How a churn case failed.
#[derive(Clone, Debug)]
pub enum ChurnViolation {
    /// A round diverged from the oracle (response/structure/contents).
    Differential { round: usize, violation: Violation },
    /// Live node blocks exceeded the occupancy bound after the last round.
    Occupancy {
        live: u64,
        bound: u64,
        post_build: u64,
    },
    /// Quarantined blocks survived the batch-boundary epoch advance.
    Quarantine { retired: u64 },
    /// The serve leg failed.
    Serve(ServeViolation),
}

impl std::fmt::Display for ChurnViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnViolation::Differential { round, violation } => {
                write!(f, "round {round}: {violation}")
            }
            ChurnViolation::Occupancy {
                live,
                bound,
                post_build,
            } => write!(
                f,
                "arena leak: {live} live node blocks after churn, bound {bound} \
                 ({post_build} post-build)"
            ),
            ChurnViolation::Quarantine { retired } => write!(
                f,
                "{retired} blocks still quarantined after the batch-boundary epoch advance"
            ),
            ChurnViolation::Serve(v) => write!(f, "serve churn leg: {v}"),
        }
    }
}

/// A churn-fuzz-found violation. Churn cases are round sequences, not
/// single batches, so there is no ddmin shrink — the seeds replay the
/// whole case bit-for-bit instead.
#[derive(Clone, Debug)]
pub struct ChurnFailure {
    /// Case index (serve-leg cases continue the numbering).
    pub case: usize,
    /// Per-case seed; each round's batch seed derives from it.
    pub case_seed: u64,
    pub violation: ChurnViolation,
    /// Self-contained `eirene-bench fuzz --churn` replay command.
    pub replay: String,
}

impl std::fmt::Display for ChurnFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "churn violation (case {}, case seed {:#x})",
            self.case, self.case_seed
        )?;
        writeln!(f, "  {}", self.violation)?;
        write!(f, "  replay: {}", self.replay)
    }
}

/// Result of a churn fuzz run.
#[derive(Debug)]
pub enum ChurnOutcome {
    /// Every case agreed with the oracle and stayed within the bound.
    Passed {
        /// Total cases executed (single-tree + serve legs).
        cases: usize,
        /// Worst observed `live / post_build` occupancy ratio across the
        /// single-tree cases (scaled by 100: 250 = 2.5x).
        worst_occupancy_pct: u64,
    },
    Failed(Box<ChurnFailure>),
}

/// SplitMix64 step (same scheme as the other harnesses).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Runs one churn case: `rounds` consecutive [`Profile::DeleteChurn`]
/// batches against one tree and one persistent oracle, then the
/// occupancy and quarantine checks. Returns the final live/post-build
/// ratio (percent) on success.
pub fn run_churn_case(opts: &ChurnOptions, case_seed: u64) -> Result<u64, ChurnViolation> {
    let pairs = dense_pairs(opts.initial_keys);
    let cfg = if opts.deterministic {
        DeviceConfig::test_small().with_deterministic_sched(mix(case_seed))
    } else {
        DeviceConfig::test_small()
    };
    let headroom = (opts.batch_size * 2).max(1 << 12);
    let mut tree = build_tree(FuzzTree::Eirene, &pairs, cfg, headroom);
    let post_build = tree.device().mem().slab_stats().live;
    let pairs32: Vec<(u32, u32)> = pairs.iter().map(|&(k, v)| (k as u32, v as u32)).collect();
    let mut oracle = SequentialOracle::load(&pairs32);
    let gen_opts = GenOptions {
        domain: opts.domain,
        batch_size: opts.batch_size,
    };
    for round in 0..opts.rounds {
        let reqs: Vec<Request> = adversarial_batch(
            mix(case_seed ^ round as u64),
            Profile::DeleteChurn,
            &gen_opts,
        )
        .requests;
        let batch = Batch::new(reqs);
        let got = tree.run_batch(&batch).responses;
        let want = oracle.run_batch(&batch);
        for i in 0..batch.len() {
            if got[i] != want[i] {
                return Err(ChurnViolation::Differential {
                    round,
                    violation: Violation::Response {
                        index: i,
                        request: batch.requests[i],
                        got: got[i].clone(),
                        want: want[i].clone(),
                    },
                });
            }
        }
    }
    let last = opts.rounds.saturating_sub(1);
    if let Err(e) = eirene_btree::validate::validate(tree.device().mem(), tree.handle()) {
        return Err(ChurnViolation::Differential {
            round: last,
            violation: Violation::Structure(e),
        });
    }
    let tree_contents = eirene_btree::refops::contents(tree.device().mem(), tree.handle());
    let oracle_contents: Vec<(u64, u64)> = oracle
        .contents()
        .iter()
        .map(|(&k, &v)| (k as u64, v as u64))
        .collect();
    if tree_contents != oracle_contents {
        return Err(ChurnViolation::Differential {
            round: last,
            violation: Violation::Contents(format!(
                "tree holds {} keys, oracle holds {}",
                tree_contents.len(),
                oracle_contents.len()
            )),
        });
    }
    let st = tree.device().mem().slab_stats();
    if st.retired > 0 {
        return Err(ChurnViolation::Quarantine {
            retired: st.retired,
        });
    }
    let bound = post_build.max(1) * opts.occupancy_factor;
    if st.live > bound {
        return Err(ChurnViolation::Occupancy {
            live: st.live,
            bound,
            post_build,
        });
    }
    Ok(st.live * 100 / post_build.max(1))
}

fn replay_command(opts: &ChurnOptions, case_seed: u64) -> String {
    let mut cmd = format!(
        "eirene-bench fuzz --churn --rounds {} --batch {} --domain {} \
         --initial-keys {} --repro-seed {case_seed:#x}",
        opts.rounds, opts.batch_size, opts.domain, opts.initial_keys,
    );
    if opts.deterministic {
        cmd.push_str(" --deterministic");
    }
    cmd
}

/// One serve-leg churn case: the concatenated churn rounds stream through
/// a sharded service with 4 racing submitters and a forced split + merge
/// rebalance mid-stream, checked by [`run_serve_case`] (tickets vs the
/// flat oracle, structures, report accounting, per-shard arena gauges).
fn run_churn_serve_leg(opts: &ChurnOptions, case_seed: u64) -> Result<(), ServeViolation> {
    let serve_opts = ServeFuzzOptions {
        seed: case_seed,
        batch_size: opts.batch_size * opts.rounds,
        domain: opts.domain,
        initial_keys: opts.initial_keys,
        submitters: 4,
        rebalance: true,
        deterministic: false,
        ..ServeFuzzOptions::default()
    };
    let pairs = dense_pairs(opts.initial_keys);
    let map = fuzz_shard_map(serve_opts.shards, opts.domain);
    let gen_opts = GenOptions {
        domain: opts.domain,
        batch_size: opts.batch_size,
    };
    // The same per-round generator as the single-tree leg; the service
    // re-timestamps at admission, so only the submission order matters.
    let reqs: Vec<Request> = (0..opts.rounds)
        .flat_map(|round| {
            adversarial_batch(
                mix(case_seed ^ round as u64),
                Profile::DeleteChurn,
                &gen_opts,
            )
            .requests
        })
        .collect();
    run_serve_case(&serve_opts, &map, &pairs, mix(case_seed), &reqs)
}

/// Runs the churn fuzz loop: `cases` single-tree round sequences, then
/// `serve_cases` serve-leg cases. Stops at the first violation. In
/// replay mode (`repro`) the given seed runs one case per configured leg.
pub fn run_churn_fuzz(opts: &ChurnOptions) -> ChurnOutcome {
    if let Some(case_seed) = opts.repro {
        let worst;
        match run_churn_case(opts, case_seed) {
            Ok(pct) => worst = pct,
            Err(violation) => {
                return ChurnOutcome::Failed(Box::new(ChurnFailure {
                    case: 0,
                    case_seed,
                    violation,
                    replay: replay_command(opts, case_seed),
                }))
            }
        }
        if opts.serve_cases > 0 {
            if let Err(v) = run_churn_serve_leg(opts, case_seed) {
                return ChurnOutcome::Failed(Box::new(ChurnFailure {
                    case: 1,
                    case_seed,
                    violation: ChurnViolation::Serve(v),
                    replay: replay_command(opts, case_seed),
                }));
            }
        }
        return ChurnOutcome::Passed {
            cases: 1 + usize::from(opts.serve_cases > 0),
            worst_occupancy_pct: worst,
        };
    }
    let mut worst = 0u64;
    for case in 0..opts.cases {
        let case_seed = mix(opts.seed ^ mix(case as u64));
        match run_churn_case(opts, case_seed) {
            Ok(pct) => worst = worst.max(pct),
            Err(violation) => {
                return ChurnOutcome::Failed(Box::new(ChurnFailure {
                    case,
                    case_seed,
                    violation,
                    replay: replay_command(opts, case_seed),
                }))
            }
        }
    }
    for sc in 0..opts.serve_cases {
        let case = opts.cases + sc;
        let case_seed = mix(opts.seed ^ mix(case as u64) ^ 0x5E4E);
        if let Err(v) = run_churn_serve_leg(opts, case_seed) {
            return ChurnOutcome::Failed(Box::new(ChurnFailure {
                case,
                case_seed,
                violation: ChurnViolation::Serve(v),
                replay: replay_command(opts, case_seed),
            }));
        }
    }
    ChurnOutcome::Passed {
        cases: opts.cases + opts.serve_cases,
        worst_occupancy_pct: worst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_opts() -> ChurnOptions {
        ChurnOptions {
            cases: 4,
            rounds: 4,
            batch_size: 96,
            domain: 1024,
            initial_keys: 512,
            serve_cases: 1,
            ..Default::default()
        }
    }

    #[test]
    fn churn_fuzz_passes_a_short_run() {
        match run_churn_fuzz(&short_opts()) {
            ChurnOutcome::Passed {
                cases,
                worst_occupancy_pct,
            } => {
                assert_eq!(cases, 5);
                assert!(
                    worst_occupancy_pct <= 400,
                    "worst occupancy {worst_occupancy_pct}% exceeds the 4x bound"
                );
            }
            ChurnOutcome::Failed(f) => panic!("unexpected violation:\n{f}"),
        }
    }

    #[test]
    fn churn_cases_replay_from_their_seed() {
        let opts = short_opts();
        let a = run_churn_case(&opts, 42).expect("case passes");
        let b = run_churn_case(&opts, 42).expect("case passes");
        // Same seed, same rounds — identical final occupancy.
        assert_eq!(a, b);
    }

    #[test]
    fn occupancy_bound_trips_on_an_artificial_leak() {
        // A zero-factor bound must always trip: live > 0 after build.
        let opts = ChurnOptions {
            occupancy_factor: 0,
            ..short_opts()
        };
        match run_churn_case(&opts, 7) {
            Err(ChurnViolation::Occupancy { live, bound, .. }) => {
                assert!(live > bound);
            }
            other => panic!("expected an occupancy violation, got {other:?}"),
        }
    }
}
