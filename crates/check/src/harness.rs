//! The fuzz driver: generate → execute → compare → shrink.

use crate::diff::{build_tree, check_tree_case, FuzzTree, Violation};
use crate::fault::{FaultSpec, FaultyTree};
use crate::gen::{adversarial_batch, dense_pairs, disjoint_batch, GenOptions, Profile};
use crate::shrink::shrink;
use eirene_baselines::common::ConcurrentTree;
use eirene_sim::DeviceConfig;
use eirene_workloads::Request;

/// Configuration of one fuzz run.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Master seed; every per-iteration batch seed and device seed derives
    /// from it.
    pub seed: u64,
    /// Iterations (fresh tree + one batch) per tree kind.
    pub batches: usize,
    /// Requests per batch.
    pub batch_size: usize,
    /// Key domain of generated requests.
    pub domain: u32,
    /// Keys pre-loaded into every fresh tree (`1..=initial_keys`).
    pub initial_keys: u32,
    /// Trees to fuzz.
    pub trees: Vec<FuzzTree>,
    /// Run devices under the seeded deterministic scheduler, making each
    /// case's warp interleaving — not just its batch — replayable from the
    /// printed seeds. Costs wall-clock: deterministic launches serialize.
    pub deterministic: bool,
    /// Inject a response off-by-one (testing the harness itself).
    pub fault: Option<FaultSpec>,
    /// Replay mode: use this value directly as the batch seed (instead of
    /// deriving per-iteration seeds from `seed`) and try each generator
    /// profile once. Batch generation depends only on
    /// `(batch seed, profile, batch_size, domain)`, so the batch seed a
    /// [`FuzzFailure`] prints regenerates the original failing case
    /// bit-for-bit.
    pub repro: Option<u64>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 0xE1BEE5,
            batches: 100,
            batch_size: 256,
            domain: 4096,
            initial_keys: 1024,
            trees: FuzzTree::ALL.to_vec(),
            deterministic: true,
            fault: None,
            repro: None,
        }
    }
}

/// A fuzz-found violation, shrunk to a minimal reproducer.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    pub tree: FuzzTree,
    /// Iteration (per tree) at which the violation surfaced.
    pub iteration: usize,
    /// Profile that generated the failing batch.
    pub profile: Option<Profile>,
    /// Seed the failing batch was generated from.
    pub batch_seed: u64,
    /// Device scheduler seed (deterministic mode only).
    pub device_seed: Option<u64>,
    /// The minimal failing request sequence.
    pub shrunk: Vec<Request>,
    /// How the shrunk case fails.
    pub violation: Violation,
    /// A self-contained `eirene-bench fuzz` command line replaying the
    /// case (carries the batch seed plus every generation parameter).
    pub replay: String,
}

impl std::fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "differential violation on {} (iteration {}, profile {:?}, batch seed {:#x}{})",
            self.tree.label(),
            self.iteration,
            self.profile,
            self.batch_seed,
            match self.device_seed {
                Some(s) => format!(", device seed {s:#x}"),
                None => ", OS scheduling".to_string(),
            }
        )?;
        writeln!(f, "  {}", self.violation)?;
        writeln!(f, "  minimal reproducer ({} requests):", self.shrunk.len())?;
        for r in &self.shrunk {
            writeln!(f, "    {r:?}")?;
        }
        write!(f, "  replay: {}", self.replay)
    }
}

/// Result of a fuzz run.
#[derive(Debug)]
pub enum FuzzOutcome {
    /// Every case agreed with the oracle.
    Passed {
        /// Total cases executed across all trees.
        cases: usize,
    },
    /// A violation was found (and shrunk).
    Failed(Box<FuzzFailure>),
}

/// SplitMix64 step, used to derive independent per-case seeds.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn device_cfg(opts: &FuzzOptions, device_seed: u64) -> DeviceConfig {
    let cfg = DeviceConfig::test_small();
    if opts.deterministic {
        cfg.with_deterministic_sched(device_seed)
    } else {
        cfg
    }
}

fn run_case(
    opts: &FuzzOptions,
    tree: FuzzTree,
    pairs: &[(u64, u64)],
    device_seed: u64,
    reqs: &[Request],
) -> Result<(), Violation> {
    let headroom = (opts.batch_size * 2).max(1 << 12);
    let built = build_tree(tree, pairs, device_cfg(opts, device_seed), headroom);
    let mut built: Box<dyn ConcurrentTree> = match opts.fault {
        Some(spec) => Box::new(FaultyTree::new(built, spec)),
        None => built,
    };
    check_tree_case(built.as_mut(), pairs, reqs)
}

/// Builds the self-contained CLI replay command printed with a failure:
/// the batch seed plus every generation parameter it combines with.
fn replay_command(opts: &FuzzOptions, tree: FuzzTree, batch_seed: u64) -> String {
    let mut cmd = format!(
        "eirene-bench fuzz --tree {} --batch {} --domain {} --initial-keys {} --repro-seed {batch_seed:#x}",
        tree.label(),
        opts.batch_size,
        opts.domain,
        opts.initial_keys,
    );
    if !opts.deterministic {
        cmd.push_str(" --os-sched");
    }
    if opts.fault.is_some() {
        cmd.push_str(" --inject-fault");
    }
    cmd
}

/// Runs the differential fuzz loop. On the first violation the failing
/// batch is shrunk (re-executing the shrunken candidate each probe, same
/// tree and device seed) and returned; otherwise all cases passed.
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzOutcome {
    let pairs = dense_pairs(opts.initial_keys);
    let gen_opts = GenOptions {
        domain: opts.domain,
        batch_size: opts.batch_size,
    };
    let mut cases = 0usize;
    // In replay mode the batch seed is fixed, so one pass over the
    // profiles covers every batch that seed can generate.
    let iters = match opts.repro {
        Some(_) => Profile::ALL.len(),
        None => opts.batches,
    };
    for iter in 0..iters {
        for &tree in &opts.trees {
            let batch_seed = match opts.repro {
                Some(s) => s,
                None => mix(opts.seed ^ mix(iter as u64) ^ tree.label().len() as u64),
            };
            let device_seed = mix(batch_seed);
            // Baselines only serialize same-key races, so they get
            // disjoint-footprint batches; linearizable trees get the full
            // adversarial generator.
            let (profile, reqs) = if tree.linearizable() {
                let profile = Profile::ALL[iter % Profile::ALL.len()];
                (
                    Some(profile),
                    adversarial_batch(batch_seed, profile, &gen_opts).requests,
                )
            } else {
                (None, disjoint_batch(batch_seed, &gen_opts).requests)
            };
            cases += 1;
            if let Err(first) = run_case(opts, tree, &pairs, device_seed, &reqs) {
                let shrunk = shrink(&reqs, |cand| {
                    run_case(opts, tree, &pairs, device_seed, cand).is_err()
                });
                let violation = run_case(opts, tree, &pairs, device_seed, &shrunk)
                    .err()
                    .unwrap_or(first);
                return FuzzOutcome::Failed(Box::new(FuzzFailure {
                    tree,
                    iteration: iter,
                    profile,
                    batch_seed,
                    device_seed: opts.deterministic.then_some(device_seed),
                    shrunk,
                    violation,
                    replay: replay_command(opts, tree, batch_seed),
                }));
            }
        }
    }
    FuzzOutcome::Passed { cases }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_trees_pass_a_short_run() {
        let opts = FuzzOptions {
            batches: 3,
            batch_size: 96,
            domain: 1024,
            initial_keys: 512,
            deterministic: false,
            ..Default::default()
        };
        match run_fuzz(&opts) {
            FuzzOutcome::Passed { cases } => assert_eq!(cases, 3 * FuzzTree::ALL.len()),
            FuzzOutcome::Failed(f) => panic!("unexpected violation:\n{f}"),
        }
    }

    #[test]
    fn repro_seed_replays_a_found_failure() {
        let opts = FuzzOptions {
            seed: 7,
            batches: 50,
            batch_size: 64,
            domain: 512,
            initial_keys: 512,
            trees: vec![FuzzTree::Eirene],
            deterministic: false,
            fault: Some(FaultSpec::default()),
            repro: None,
        };
        let found = match run_fuzz(&opts) {
            FuzzOutcome::Failed(f) => f,
            FuzzOutcome::Passed { cases } => panic!("no failure to replay across {cases} cases"),
        };
        assert!(found.replay.contains("--repro-seed"), "{}", found.replay);
        let replayed = match run_fuzz(&FuzzOptions {
            repro: Some(found.batch_seed),
            ..opts
        }) {
            FuzzOutcome::Failed(f) => f,
            FuzzOutcome::Passed { cases } => panic!(
                "repro seed {:#x} did not reproduce in {cases} cases",
                found.batch_seed
            ),
        };
        assert_eq!(replayed.batch_seed, found.batch_seed);
        assert!(!replayed.shrunk.is_empty());
    }

    #[test]
    fn seed_derivation_separates_trees_and_iterations() {
        let a = mix(1 ^ mix(0) ^ 6);
        let b = mix(1 ^ mix(1) ^ 6);
        let c = mix(1 ^ mix(0) ^ 3);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
