//! Differential fuzzing of the whole sharded serving layer
//! (`eirene-serve`): adversarial request streams submitted through a
//! service — boundary-straddling ranges, delete churn, duplicate-heavy key
//! mixes from the existing generators — checked ticket-by-ticket against
//! the [`SequentialOracle`], with ddmin shrinking to a minimal cross-shard
//! counterexample.
//!
//! The oracle side leans on the service's linearizability contract: every
//! admitted request linearizes at its admission timestamp (exposed through
//! [`Ticket::timestamp`]), so replaying the submissions through the flat
//! [`SequentialOracle`] *in timestamp order* must reproduce every ticket's
//! response and the merged final contents — whatever the submission
//! interleaving was. That makes the same check work for one client and for
//! several racing lock-free submitter threads, and it exercises the epoch
//! structure, the shard split, the cross-shard range merge, the reorder
//! watermark, and batched [`Client::submit_many`] admission all at once
//! (each submitter chops its stream into pseudo-random single/batched
//! chunks derived from the case seed).

use crate::gen::{adversarial_batch, dense_pairs, GenOptions, Profile};
use crate::shrink::shrink;
use eirene_serve::{
    reconcile_samples, AdmitPolicy, AimdSpec, Client, EpochSizing, FaultPlan, ObserveConfig,
    Outcome, QosConfig, RebalanceAction, RebalanceKind, RebalanceSpec, SeriesCollector,
    ServeConfig, Service, ShardMap, Sharding, Ticket,
};
use eirene_sim::DeviceConfig;
use eirene_workloads::{Batch, Key, OpKind, Oracle, Request, Response, SequentialOracle};
use std::time::Duration;

/// Configuration of one serve-mode fuzz run.
#[derive(Clone, Debug)]
pub struct ServeFuzzOptions {
    /// Master seed; per-case batch seeds derive from it.
    pub seed: u64,
    /// Adversarial batches to push through fresh services.
    pub cases: usize,
    /// Requests per case.
    pub batch_size: usize,
    /// Key domain of generated requests.
    pub domain: u32,
    /// Keys pre-loaded into every fresh service (`1..=initial_keys`).
    pub initial_keys: u32,
    /// Shards per service; boundaries are spread across the generation
    /// domain so generated ranges actually straddle them.
    pub shards: usize,
    /// Epoch size limit, chosen well below `batch_size` so every case
    /// exercises multiple epoch boundaries per shard.
    pub epoch_limit: usize,
    /// Concurrent submitter threads per case (contiguous slices of the
    /// request stream race through the lock-free admission path).
    pub submitters: usize,
    /// Drive epoch sizes with the AIMD controller instead of a fixed
    /// limit: targets start at `epoch_limit / 4` and move every epoch, so
    /// cases exercise epoch boundaries at shifting batch sizes.
    pub adaptive: bool,
    /// QoS tenant lanes per shard (0 or 1 disables lanes). Submissions
    /// rotate across tenants, so admission goes through lane staging and
    /// the WRR drain; quotas are sized so nothing is shed and the oracle
    /// contract is unchanged (lanes reorder admission, not timestamps).
    pub tenants: usize,
    /// Run shard devices under the seeded deterministic scheduler.
    pub deterministic: bool,
    /// Exercise online rebalancing: half the stream is submitted, then a
    /// split of shard 0 and a merge of shard 0 into shard 1 are forced
    /// (migrating live keys) before the rest of the stream races the new
    /// topology. The unmodified flat oracle must still reproduce every
    /// response — topology changes are invisible to linearizability.
    pub rebalance: bool,
    /// Serve with [`Sharding::Hash`] instead of key ranges: every range
    /// query scatter-gathers across all shards and must merge to exactly
    /// what the range-partitioned service (and the flat oracle) produce.
    pub hash: bool,
    /// Replay mode: use this value directly as the batch seed and try each
    /// generator profile once (same contract as
    /// [`FuzzOptions::repro`](crate::FuzzOptions)).
    pub repro: Option<u64>,
}

impl Default for ServeFuzzOptions {
    fn default() -> Self {
        ServeFuzzOptions {
            seed: 0x5E4E5E,
            cases: 500,
            batch_size: 192,
            domain: 4096,
            initial_keys: 1024,
            shards: 4,
            epoch_limit: 48,
            submitters: 1,
            adaptive: false,
            tenants: 0,
            deterministic: false,
            rebalance: false,
            hash: false,
            repro: None,
        }
    }
}

/// How a serve-mode case failed.
#[derive(Clone, Debug)]
pub enum ServeViolation {
    /// A ticket's response diverged from the oracle's.
    Response {
        index: usize,
        request: Request,
        got: Response,
        want: Response,
    },
    /// A ticket resolved without executing (shed or timed out) although the
    /// case neither sets deadlines nor saturates the queues.
    NotExecuted {
        index: usize,
        request: Request,
        outcome: Outcome,
    },
    /// A shard tree failed `btree::validate` after the run.
    Structure(String),
    /// Responses matched but the merged final contents diverged.
    Contents(String),
    /// The report's own accounting is inconsistent (counter balance or
    /// phase rows).
    Accounting(String),
}

impl std::fmt::Display for ServeViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeViolation::Response {
                index,
                request,
                got,
                want,
            } => write!(
                f,
                "ticket {index} diverges for {request:?}: got {got:?}, oracle says {want:?}"
            ),
            ServeViolation::NotExecuted {
                index,
                request,
                outcome,
            } => write!(
                f,
                "ticket {index} for {request:?} resolved {outcome:?} without executing"
            ),
            ServeViolation::Structure(e) => write!(f, "structural invariant violated: {e}"),
            ServeViolation::Contents(e) => write!(f, "final contents diverge: {e}"),
            ServeViolation::Accounting(e) => write!(f, "report accounting inconsistent: {e}"),
        }
    }
}

/// A serve-fuzz-found violation, shrunk to a minimal reproducer.
#[derive(Clone, Debug)]
pub struct ServeFuzzFailure {
    pub iteration: usize,
    pub profile: Profile,
    pub batch_seed: u64,
    /// Base device seed (deterministic mode only; per-shard seeds derive
    /// from it through [`Cluster`](eirene_sim::Cluster)).
    pub device_seed: Option<u64>,
    pub shards: usize,
    /// The minimal failing submission sequence (timestamps are positional).
    pub shrunk: Vec<Request>,
    pub violation: ServeViolation,
    /// Self-contained `eirene-bench fuzz --serve` replay command.
    pub replay: String,
}

impl std::fmt::Display for ServeFuzzFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "serve differential violation across {} shards (iteration {}, profile {:?}, batch seed {:#x}{})",
            self.shards,
            self.iteration,
            self.profile,
            self.batch_seed,
            match self.device_seed {
                Some(s) => format!(", device seed {s:#x}"),
                None => ", OS scheduling".to_string(),
            }
        )?;
        writeln!(f, "  {}", self.violation)?;
        writeln!(f, "  minimal reproducer ({} requests):", self.shrunk.len())?;
        for r in &self.shrunk {
            writeln!(f, "    {r:?}")?;
        }
        write!(f, "  replay: {}", self.replay)
    }
}

/// Result of a serve-mode fuzz run.
#[derive(Debug)]
pub enum ServeFuzzOutcome {
    Passed { cases: usize },
    Failed(Box<ServeFuzzFailure>),
}

/// The shard map the fuzzer services use: boundaries spread uniformly
/// across the *generation domain* (not the full `u32` space), so generated
/// keys and range windows land on and straddle real shard boundaries. The
/// last shard still runs to `u32::MAX`, covering the boundary profile's
/// extreme keys.
pub fn fuzz_shard_map(shards: usize, domain: u32) -> ShardMap {
    assert!(shards > 0 && (shards as u64) <= domain as u64 + 1);
    let width = (domain / shards as u32).max(1);
    ShardMap::from_starts((0..shards as u32).map(|i| i * width).collect())
        .expect("valid shard starts")
}

/// SplitMix64 step (same scheme as the single-tree harness).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Submits one stream as a pseudo-random mix of single `submit` calls
/// and `submit_many` chunks (chunk pattern derived from `seed`),
/// rotating each chunk across the tenant clients, returning the tickets
/// in submission order.
fn submit_stream(clients: &[Client], reqs: &[Request], seed: u64) -> Vec<Ticket> {
    let mut tickets = Vec::with_capacity(reqs.len());
    let mut state = seed;
    let mut i = 0;
    while i < reqs.len() {
        state = mix(state);
        let client = &clients[(state >> 32) as usize % clients.len()];
        let take = (1 + state % 13) as usize;
        let take = take.min(reqs.len() - i);
        if take == 1 {
            tickets.push(client.submit(reqs[i].key, reqs[i].op));
        } else {
            let ops: Vec<(Key, OpKind)> = reqs[i..i + take].iter().map(|r| (r.key, r.op)).collect();
            tickets.extend(client.submit_many(&ops));
        }
        i += take;
    }
    tickets
}

/// One client per tenant (just the default client when lanes are off).
fn tenant_clients(svc: &Service, opts: &ServeFuzzOptions) -> Vec<Client> {
    let base = svc.client();
    if opts.tenants > 1 {
        (0..opts.tenants).map(|t| base.for_tenant(t)).collect()
    } else {
        vec![base]
    }
}

/// Submits one phase of the stream: one client, or `submitters` racing
/// threads on contiguous slices. Tickets keep submission-slice order so
/// `tickets[i]` still belongs to `reqs[i]`.
fn submit_phase(clients: &[Client], reqs: &[Request], submitters: usize, seed: u64) -> Vec<Ticket> {
    if submitters <= 1 {
        return submit_stream(clients, reqs, mix(seed));
    }
    let chunk = reqs.len().div_ceil(submitters);
    let mut parts: Vec<Vec<Ticket>> = Vec::with_capacity(submitters);
    std::thread::scope(|scope| {
        let handles: Vec<_> = reqs
            .chunks(chunk.max(1))
            .enumerate()
            .map(|(t, slice)| {
                scope.spawn(move || submit_stream(clients, slice, mix(seed ^ t as u64)))
            })
            .collect();
        parts.extend(handles.into_iter().map(|h| h.join().expect("submitter")));
    });
    parts.into_iter().flatten().collect()
}

/// Submits `reqs` through a fresh service over `pairs` — one client, or
/// `opts.submitters` racing threads on contiguous slices, chunked through
/// `submit_many` either way — and checks every ticket, the merged
/// contents, the structures, and the report accounting against the
/// sequential oracle replayed in admission-timestamp order.
pub fn run_serve_case(
    opts: &ServeFuzzOptions,
    map: &ShardMap,
    pairs: &[(u64, u64)],
    device_seed: u64,
    reqs: &[Request],
) -> Result<(), ServeViolation> {
    let device = if opts.deterministic {
        DeviceConfig::test_small().with_deterministic_sched(device_seed)
    } else {
        DeviceConfig::test_small()
    };
    // Observability rides along on every case: span recording plus a live
    // sample collector, cross-checked against the final report below.
    let collector = SeriesCollector::new();
    let sizing = if opts.adaptive {
        // Start well below the limit so the controller's moves are what
        // pick each epoch's size, not the bound.
        EpochSizing::Adaptive(AimdSpec::bounded(
            (opts.epoch_limit / 4).max(1),
            opts.epoch_limit.max(1),
        ))
    } else {
        EpochSizing::Fixed(opts.epoch_limit.max(1))
    };
    let qos = if opts.tenants > 1 {
        // Quota fits the whole case staged on one lane, so lanes never
        // shed and the zero-shed accounting check below still holds.
        QosConfig::uniform(opts.tenants, reqs.len() + 1)
    } else {
        QosConfig::disabled()
    };
    // Hash sharding and online rebalancing are mutually exclusive (the
    // hash topology is fixed), and rebalancing needs a boundary to move.
    let do_rebalance = opts.rebalance && !opts.hash && map.num_shards() >= 2;
    let cfg = ServeConfig {
        map: map.clone(),
        sharding: if opts.hash {
            Sharding::Hash
        } else {
            Sharding::Range
        },
        rebalance: do_rebalance.then(RebalanceSpec::manual),
        device,
        sizing,
        qos,
        // Generous: every entry (split ranges make one per covered shard)
        // fits queued at once, so nothing is shed even with the gate held.
        queue_depth: (reqs.len() + 1) * map.num_shards(),
        policy: AdmitPolicy::Block,
        linger: Duration::ZERO,
        hold_gate: true,
        headroom_nodes: (reqs.len() * 4).max(1 << 12),
        observe: ObserveConfig::with_observer(collector.clone()),
        ..ServeConfig::default()
    };
    let svc = Service::new(pairs, cfg);
    let submitters = opts.submitters.max(1);
    let clients = tenant_clients(&svc, opts);
    let tickets: Vec<Ticket> = if do_rebalance {
        // Phase 1 races the original topology behind the held gate...
        let (head, tail) = reqs.split_at(reqs.len() / 2);
        let mut tickets = submit_phase(&clients, head, submitters, device_seed);
        svc.release();
        // ...then a forced split and a forced merge migrate live keys
        // (quiescing needs the gate released, so forcing comes after)...
        svc.force_rebalance(RebalanceAction::Split { shard: 0 });
        svc.force_rebalance(RebalanceAction::Merge { left: 0 });
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while svc.rebalance_attempts() < 2 {
            if std::time::Instant::now() > deadline {
                return Err(ServeViolation::Accounting(
                    "forced rebalance attempts did not complete within 30s".into(),
                ));
            }
            std::thread::sleep(Duration::from_micros(50));
        }
        // ...and phase 2 races the moved boundaries.
        tickets.extend(submit_phase(&clients, tail, submitters, mix(device_seed)));
        tickets
    } else {
        let tickets = submit_phase(&clients, reqs, submitters, device_seed);
        svc.release();
        tickets
    };
    let report = svc.shutdown();
    if do_rebalance {
        let has =
            |kind: RebalanceKind| report.rebalances.iter().any(|e| e.kind == kind && e.forced);
        if !has(RebalanceKind::Split) || !has(RebalanceKind::Merge) {
            return Err(ServeViolation::Accounting(format!(
                "forced rebalance published {:?}: want at least one forced split and one forced merge",
                report.rebalances
            )));
        }
    }

    // Replay the oracle in admission-timestamp order — the service's
    // linearization order whatever the submission interleaving was.
    // Empty-window ranges are never admitted (no timestamp): they must
    // resolve to an empty range response and touch nothing.
    let mut order: Vec<(u64, usize)> = Vec::with_capacity(tickets.len());
    for (index, ticket) in tickets.iter().enumerate() {
        match ticket.timestamp() {
            Some(ts) => order.push((ts, index)),
            None => {
                let want = Response::Range(Vec::new());
                match ticket.wait() {
                    Outcome::Done(got) if got == want => {}
                    Outcome::Done(got) => {
                        return Err(ServeViolation::Response {
                            index,
                            request: reqs[index],
                            got,
                            want,
                        })
                    }
                    outcome => {
                        return Err(ServeViolation::NotExecuted {
                            index,
                            request: reqs[index],
                            outcome,
                        })
                    }
                }
            }
        }
    }
    order.sort_unstable();
    let pairs32: Vec<(u32, u32)> = pairs.iter().map(|&(k, v)| (k as u32, v as u32)).collect();
    let mut oracle = SequentialOracle::load(&pairs32);
    let batch = Batch::new(
        order
            .iter()
            .map(|&(ts, i)| Request {
                key: reqs[i].key,
                op: reqs[i].op,
                ts,
            })
            .collect(),
    );
    let want = oracle.run_batch(&batch);
    for (pos, (&(_, index), want)) in order.iter().zip(want).enumerate() {
        match tickets[index].wait() {
            Outcome::Done(got) => {
                if got != want {
                    return Err(ServeViolation::Response {
                        index,
                        request: batch.requests[pos],
                        got,
                        want,
                    });
                }
            }
            outcome => {
                return Err(ServeViolation::NotExecuted {
                    index,
                    request: batch.requests[pos],
                    outcome,
                })
            }
        }
    }
    report.structure().map_err(ServeViolation::Structure)?;
    let got_contents = report.contents();
    let want_contents: Vec<(u64, u64)> = oracle
        .contents()
        .iter()
        .map(|(&k, &v)| (k as u64, v as u64))
        .collect();
    if got_contents != want_contents {
        return Err(ServeViolation::Contents(contents_diff(
            &got_contents,
            &want_contents,
        )));
    }
    if report.shed() != 0 || report.timed_out() != 0 {
        return Err(ServeViolation::Accounting(format!(
            "unexpected shed={} timed_out={}",
            report.shed(),
            report.timed_out()
        )));
    }
    if report.enqueued() != report.executed() {
        return Err(ServeViolation::Accounting(format!(
            "enqueued {} != executed {}",
            report.enqueued(),
            report.executed()
        )));
    }
    if !report.phase_rows_sum_to_totals() {
        return Err(ServeViolation::Accounting(
            "phase rows do not sum to totals".to_string(),
        ));
    }
    // Span lifecycle invariants: one monotone submit→complete chain per
    // executed entry, phase deltas telescoping to the span's end-to-end
    // cycles, and (with nothing evicted) span totals summing exactly to
    // the shard's reported latency histogram.
    for shard in &report.shards {
        if shard.spans.len() as u64 + shard.spans_dropped != shard.executed {
            return Err(ServeViolation::Accounting(format!(
                "shard {}: {} spans + {} dropped != {} executed",
                shard.shard,
                shard.spans.len(),
                shard.spans_dropped,
                shard.executed
            )));
        }
        for span in &shard.spans {
            if !span.is_monotone() {
                return Err(ServeViolation::Accounting(format!(
                    "shard {}: span {} stamps regress: {:?}",
                    shard.shard, span.id, span.stamps
                )));
            }
            if span.phase_deltas().iter().sum::<u64>() != span.total_cycles() {
                return Err(ServeViolation::Accounting(format!(
                    "shard {}: span {} phase deltas do not telescope",
                    shard.shard, span.id
                )));
            }
        }
        if shard.spans_dropped == 0 {
            let span_sum: u64 = shard.spans.iter().map(|s| s.total_cycles()).sum();
            if span_sum != shard.latency.sum() {
                return Err(ServeViolation::Accounting(format!(
                    "shard {}: span latency sum {span_sum} != histogram sum {}",
                    shard.shard,
                    shard.latency.sum()
                )));
            }
        }
    }
    // Arena accounting: the terminal sample is taken after the final
    // epoch advance, so nothing may still sit in quarantine, and the live
    // node count must be consistent with the shard's key count — every
    // non-root node holds at least MIN_OCCUPANCY (4) keys, so a shard
    // whose arena holds more blocks than keys (plus slack for the
    // sentinel, the root chain, and near-empty shards) is leaking nodes.
    for shard in &report.shards {
        if shard.arena_retired != 0 {
            return Err(ServeViolation::Accounting(format!(
                "shard {}: {} blocks still quarantined at shutdown",
                shard.shard, shard.arena_retired
            )));
        }
        let bound = shard.key_count + 16;
        if shard.arena_live > bound {
            return Err(ServeViolation::Accounting(format!(
                "shard {}: {} live node blocks for {} keys (bound {bound}): arena leak",
                shard.shard, shard.arena_live, shard.key_count
            )));
        }
    }
    // The live sample series (epoch ids, terminal counter snapshots) must
    // reconcile exactly with the report's totals.
    reconcile_samples(&collector.samples(), &report).map_err(ServeViolation::Accounting)?;
    Ok(())
}

/// Fault-injection probe for the admission reservation guard (the
/// "submitter killed between reserve and push" leak): arms
/// [`FaultPlan::panic_on_admit`] so the first admission panics on its own
/// scratch thread *inside* the reserve→push window, then proves the slot
/// was recovered during unwind — the full queue depth must still admit
/// without shedding, every ticket must execute, and the drained report
/// must balance. Before the guard existed this wedged admission at
/// `queue_depth - 1` forever.
pub fn run_reservation_fault_case(queue_depth: usize) -> Result<(), String> {
    let pairs = dense_pairs(64);
    let cfg = ServeConfig {
        map: ShardMap::from_starts(vec![0]).expect("valid shard starts"),
        device: DeviceConfig::test_small(),
        sizing: EpochSizing::Fixed(64),
        queue_depth,
        policy: AdmitPolicy::Shed,
        linger: Duration::ZERO,
        hold_gate: true,
        fault: FaultPlan {
            panic_on_admit: Some(0),
        },
        ..ServeConfig::default()
    };
    let svc = Service::new(&pairs, cfg);
    // The victim submission dies mid-admission; the (expected) panic
    // stays on its scratch thread. Its noisy backtrace in test output is
    // the injection working.
    let victim = {
        let client = svc.client();
        std::thread::spawn(move || {
            let _ = client.submit(1, OpKind::Query);
        })
    };
    if victim.join().is_ok() {
        return Err("injected admission fault did not trip".into());
    }
    // With the slot released, the *full* queue depth still fits behind
    // the held gate; a leaked reservation would shed the last entry.
    let client = svc.client();
    let tickets: Vec<Ticket> = (0..queue_depth)
        .map(|i| client.submit(1 + i as u32, OpKind::Query))
        .collect();
    svc.release();
    let report = svc.shutdown();
    for (i, ticket) in tickets.iter().enumerate() {
        match ticket.wait() {
            Outcome::Done(_) => {}
            outcome => {
                return Err(format!(
                    "ticket {i} resolved {outcome:?}: leaked reservation starved admission"
                ))
            }
        }
    }
    if report.shed() != 0 {
        return Err(format!(
            "{} entries shed after the fault: reservation leaked",
            report.shed()
        ));
    }
    if report.enqueued() != queue_depth as u64 || report.executed() != queue_depth as u64 {
        return Err(format!(
            "post-fault accounting off: enqueued {} executed {} (want {queue_depth} each)",
            report.enqueued(),
            report.executed()
        ));
    }
    Ok(())
}

fn contents_diff(got: &[(u64, u64)], want: &[(u64, u64)]) -> String {
    let n = got.len().min(want.len());
    for i in 0..n {
        if got[i] != want[i] {
            return format!(
                "at sorted position {i}: service has {:?}, oracle has {:?}",
                got[i], want[i]
            );
        }
    }
    format!(
        "service holds {} keys, oracle holds {}",
        got.len(),
        want.len()
    )
}

fn replay_command(opts: &ServeFuzzOptions, batch_seed: u64) -> String {
    let mut cmd = format!(
        "eirene-bench fuzz --serve --shards {} --batch {} --domain {} --initial-keys {} --repro-seed {batch_seed:#x}",
        opts.shards, opts.batch_size, opts.domain, opts.initial_keys,
    );
    if opts.submitters > 1 {
        cmd.push_str(&format!(" --submitters {}", opts.submitters));
    }
    if opts.adaptive {
        cmd.push_str(" --adaptive");
    }
    if opts.tenants > 1 {
        cmd.push_str(&format!(" --tenants {}", opts.tenants));
    }
    if opts.rebalance {
        cmd.push_str(" --rebalance");
    }
    if opts.hash {
        cmd.push_str(" --hash");
    }
    if !opts.deterministic {
        cmd.push_str(" --os-sched");
    }
    cmd
}

/// Runs the serve-mode differential fuzz loop. On the first violation the
/// failing submission sequence is ddmin-shrunk (re-running a fresh service
/// per probe, same shard map and device seed) and returned.
pub fn run_serve_fuzz(opts: &ServeFuzzOptions) -> ServeFuzzOutcome {
    let pairs = dense_pairs(opts.initial_keys);
    let map = fuzz_shard_map(opts.shards, opts.domain);
    let gen_opts = GenOptions {
        domain: opts.domain,
        batch_size: opts.batch_size,
    };
    let iters = match opts.repro {
        Some(_) => Profile::ALL.len(),
        None => opts.cases,
    };
    for iter in 0..iters {
        let batch_seed = match opts.repro {
            Some(s) => s,
            None => mix(opts.seed ^ mix(iter as u64)),
        };
        let device_seed = mix(batch_seed);
        let profile = Profile::ALL[iter % Profile::ALL.len()];
        // The generated timestamps are discarded: the serving layer assigns
        // timestamps at admission, so only the submission *order* matters.
        let reqs = adversarial_batch(batch_seed, profile, &gen_opts).requests;
        if let Err(first) = run_serve_case(opts, &map, &pairs, device_seed, &reqs) {
            let shrunk = shrink(&reqs, |cand| {
                run_serve_case(opts, &map, &pairs, device_seed, cand).is_err()
            });
            let violation = run_serve_case(opts, &map, &pairs, device_seed, &shrunk)
                .err()
                .unwrap_or(first);
            return ServeFuzzOutcome::Failed(Box::new(ServeFuzzFailure {
                iteration: iter,
                profile,
                batch_seed,
                device_seed: opts.deterministic.then_some(device_seed),
                shards: opts.shards,
                shrunk,
                violation,
                replay: replay_command(opts, batch_seed),
            }));
        }
    }
    ServeFuzzOutcome::Passed { cases: iters }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_opts() -> ServeFuzzOptions {
        ServeFuzzOptions {
            cases: 12, // two passes over every generator profile
            batch_size: 96,
            domain: 1024,
            initial_keys: 512,
            epoch_limit: 24,
            ..Default::default()
        }
    }

    #[test]
    fn serve_fuzz_passes_a_short_run() {
        match run_serve_fuzz(&short_opts()) {
            ServeFuzzOutcome::Passed { cases } => assert_eq!(cases, 12),
            ServeFuzzOutcome::Failed(f) => panic!("unexpected violation:\n{f}"),
        }
    }

    #[test]
    fn serve_fuzz_passes_with_racing_submitters() {
        let opts = ServeFuzzOptions {
            cases: 6,
            submitters: 4,
            ..short_opts()
        };
        match run_serve_fuzz(&opts) {
            ServeFuzzOutcome::Passed { cases } => assert_eq!(cases, 6),
            ServeFuzzOutcome::Failed(f) => panic!("unexpected violation:\n{f}"),
        }
    }

    #[test]
    fn serve_fuzz_passes_with_adaptive_sizing_and_tenant_lanes() {
        let opts = ServeFuzzOptions {
            cases: 6,
            adaptive: true,
            tenants: 4,
            ..short_opts()
        };
        match run_serve_fuzz(&opts) {
            ServeFuzzOutcome::Passed { cases } => assert_eq!(cases, 6),
            ServeFuzzOutcome::Failed(f) => panic!("unexpected violation:\n{f}"),
        }
    }

    #[test]
    fn serve_fuzz_passes_with_adaptive_tenants_and_racing_submitters() {
        let opts = ServeFuzzOptions {
            cases: 4,
            adaptive: true,
            tenants: 3,
            submitters: 4,
            ..short_opts()
        };
        match run_serve_fuzz(&opts) {
            ServeFuzzOutcome::Passed { cases } => assert_eq!(cases, 4),
            ServeFuzzOutcome::Failed(f) => panic!("unexpected violation:\n{f}"),
        }
    }

    #[test]
    fn serve_fuzz_passes_with_forced_rebalancing() {
        let opts = ServeFuzzOptions {
            cases: 6,
            rebalance: true,
            ..short_opts()
        };
        match run_serve_fuzz(&opts) {
            ServeFuzzOutcome::Passed { cases } => assert_eq!(cases, 6),
            ServeFuzzOutcome::Failed(f) => panic!("unexpected violation:\n{f}"),
        }
    }

    #[test]
    fn serve_fuzz_passes_with_rebalancing_and_racing_submitters() {
        let opts = ServeFuzzOptions {
            cases: 4,
            rebalance: true,
            submitters: 4,
            ..short_opts()
        };
        match run_serve_fuzz(&opts) {
            ServeFuzzOutcome::Passed { cases } => assert_eq!(cases, 4),
            ServeFuzzOutcome::Failed(f) => panic!("unexpected violation:\n{f}"),
        }
    }

    #[test]
    fn serve_fuzz_passes_under_hash_sharding() {
        let opts = ServeFuzzOptions {
            cases: 6,
            hash: true,
            ..short_opts()
        };
        match run_serve_fuzz(&opts) {
            ServeFuzzOutcome::Passed { cases } => assert_eq!(cases, 6),
            ServeFuzzOutcome::Failed(f) => panic!("unexpected violation:\n{f}"),
        }
    }

    #[test]
    fn serve_fuzz_passes_under_deterministic_scheduling() {
        let opts = ServeFuzzOptions {
            cases: 2,
            batch_size: 64,
            deterministic: true,
            ..short_opts()
        };
        match run_serve_fuzz(&opts) {
            ServeFuzzOutcome::Passed { cases } => assert_eq!(cases, 2),
            ServeFuzzOutcome::Failed(f) => panic!("unexpected violation:\n{f}"),
        }
    }

    #[test]
    fn killed_submitter_releases_its_reservation() {
        run_reservation_fault_case(32).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn fuzz_shard_map_spreads_boundaries_over_the_domain() {
        let map = fuzz_shard_map(4, 4096);
        assert_eq!(map.boundaries(), vec![1024, 2048, 3072]);
        assert_eq!(map.shard_of(u32::MAX), 3);
        // A mid-domain window straddles a boundary into multiple parts.
        assert!(map.split_range(1000, 100).len() > 1);
    }
}
