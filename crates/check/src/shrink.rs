//! Delta-debugging reduction of a failing batch.
//!
//! Classic ddmin over the request list: try removing ever-smaller chunks,
//! keeping any removal after which the case still fails, until no single
//! request can be removed. The test predicate rebuilds the tree from
//! scratch on every probe (see [`check_case`](crate::diff::check_case)),
//! so probes are independent and — under the deterministic scheduler —
//! exactly reproducible.

use eirene_workloads::Request;

/// Shrinks `reqs` to a (locally) minimal subsequence for which
/// `still_fails` returns `true`. The caller guarantees
/// `still_fails(reqs)`; the result preserves relative request order.
pub fn shrink(reqs: &[Request], mut still_fails: impl FnMut(&[Request]) -> bool) -> Vec<Request> {
    debug_assert!(still_fails(reqs), "shrink needs a failing input");
    let mut cur = reqs.to_vec();
    let mut chunk = cur.len().div_ceil(2).max(1);
    loop {
        let mut removed_any = false;
        let mut start = 0;
        while start < cur.len() && cur.len() > 1 {
            let end = (start + chunk).min(cur.len());
            let mut cand = Vec::with_capacity(cur.len() - (end - start));
            cand.extend_from_slice(&cur[..start]);
            cand.extend_from_slice(&cur[end..]);
            if !cand.is_empty() && still_fails(&cand) {
                cur = cand;
                removed_any = true;
                // Re-probe the same offset: the next chunk slid into it.
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            if !removed_any {
                return cur;
            }
            // A removal at granularity 1 can unlock further removals of
            // earlier elements; loop until a full clean pass.
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eirene_workloads::Request;

    fn reqs(n: u64) -> Vec<Request> {
        (0..n).map(|i| Request::query(i as u32, i)).collect()
    }

    #[test]
    fn shrinks_to_the_single_culprit() {
        let input = reqs(100);
        let out = shrink(&input, |rs| rs.iter().any(|r| r.key == 37));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].key, 37);
    }

    #[test]
    fn shrinks_to_an_interacting_pair_preserving_order() {
        // Fails only when key 10 appears before key 90.
        let input = reqs(100);
        let out = shrink(&input, |rs| {
            let a = rs.iter().position(|r| r.key == 10);
            let b = rs.iter().position(|r| r.key == 90);
            matches!((a, b), (Some(a), Some(b)) if a < b)
        });
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].key, out[1].key), (10, 90));
    }

    #[test]
    fn keeps_everything_when_all_requests_matter() {
        let input = reqs(7);
        let out = shrink(&input, |rs| rs.len() == 7);
        assert_eq!(out.len(), 7);
    }
}
