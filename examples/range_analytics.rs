//! Range queries racing with updates — the scenario of §4.1.2 (Figs. 4-5):
//! a range query must observe, for every covered key, exactly the value
//! visible at the query's own timestamp, even though the updates in its
//! range are combined and only one per key ever reaches the tree.
//!
//! The example runs an order-book-like workload: one hot band of keys is
//! continuously rewritten while analytic range scans sweep the band, and
//! every scan is checked against the sequential oracle.
//!
//! ```text
//! cargo run --release --example range_analytics
//! ```

use eirene::baselines::common::ConcurrentTree;
use eirene::core::{EireneOptions, EireneTree};
use eirene::workloads::{Batch, OpKind, Oracle, Request, SequentialOracle};
use rand::{Rng, SeedableRng};

fn main() {
    let n = 4096u64;
    let pairs: Vec<(u64, u64)> = (1..=n).map(|i| (2 * i, 100 + 2 * i)).collect();
    let init: Vec<(u32, u32)> = pairs.iter().map(|&(k, v)| (k as u32, (v) as u32)).collect();
    let mut tree = EireneTree::new(&pairs, EireneOptions::default());
    let mut oracle = SequentialOracle::load(&init);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);

    let hot_lo = 1000u32;
    let hot_hi = 1200u32;
    let mut checked_scans = 0usize;
    let mut patched_slots = 0usize;

    for round in 0..5 {
        // Build a batch interleaving price updates on the hot band with
        // range scans over it.
        let mut reqs = Vec::new();
        for ts in 0..8192u64 {
            let r: f64 = rng.gen();
            let req = if r < 0.30 {
                let key = rng.gen_range(hot_lo..=hot_hi);
                Request {
                    key,
                    op: OpKind::Upsert(rng.gen::<u32>() >> 4),
                    ts,
                }
            } else if r < 0.40 {
                let lo = rng.gen_range(hot_lo..hot_hi - 8);
                Request {
                    key: lo,
                    op: OpKind::Range { len: 8 },
                    ts,
                }
            } else {
                let key = rng.gen_range(1..=(2 * n) as u32);
                Request {
                    key,
                    op: OpKind::Query,
                    ts,
                }
            };
            reqs.push(req);
        }
        let batch = Batch::new(reqs);
        let plan = tree.plan(&batch);
        patched_slots += plan.artificial_count();
        let got = tree.run_batch(&batch).responses;
        let want = oracle.run_batch(&batch);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g, w, "round {round}, request {i}: {:?}", batch.requests[i]);
            if matches!(batch.requests[i].op, OpKind::Range { .. }) {
                checked_scans += 1;
            }
        }
        println!(
            "round {round}: {} requests, {} range scans verified, \
             {} artificial queries generated",
            batch.len(),
            checked_scans,
            plan.artificial_count()
        );
    }
    println!(
        "\nAll range scans observed timestamp-consistent snapshots \
         ({patched_slots} slots were patched via artificial queries — \
         without §4.1.2 every one of them could have been wrong)."
    );
}
