//! Quickstart: build an Eirene tree, run one concurrent batch, inspect
//! results and execution statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use eirene::baselines::common::ConcurrentTree;
use eirene::core::{EireneOptions, EireneTree};
use eirene::workloads::{Batch, Request, Response};

fn main() {
    // 1. Bulk-load a tree with the even keys 2..=2000, value = key + 1.
    let pairs: Vec<(u64, u64)> = (1..=1000u64).map(|i| (2 * i, 2 * i + 1)).collect();
    let mut tree = EireneTree::new(&pairs, EireneOptions::default());

    // 2. Buffer a batch of concurrent requests. The timestamp (third
    //    argument) is the arrival order, which fixes the linearization:
    //    requests on the same key behave exactly as if executed one at a
    //    time in timestamp order.
    let batch = Batch::new(vec![
        Request::query(10, 0),       // sees the loaded value 11
        Request::upsert(10, 555, 1), // overwrites key 10
        Request::query(10, 2),       // sees 555
        Request::delete(10, 3),      // removes key 10
        Request::query(10, 4),       // sees nothing
        Request::upsert(11, 7, 5),   // inserts a brand-new odd key
        Request::range(8, 6, 6),     // keys 8..=13 as of timestamp 6
    ]);

    // 3. Ship the batch to the (simulated) GPU.
    let run = tree.run_batch(&batch);

    // 4. Responses are positionally aligned with the batch.
    for (req, resp) in batch.requests.iter().zip(&run.responses) {
        println!("{req:?}\n    -> {resp:?}");
    }
    assert_eq!(run.responses[0], Response::Value(Some(11)));
    assert_eq!(run.responses[2], Response::Value(Some(555)));
    assert_eq!(run.responses[4], Response::Value(None));
    assert_eq!(
        run.responses[6],
        Response::Range(vec![Some(9), None, None, Some(7), Some(13), None])
    );

    // 5. Execution statistics: what Nsight Compute would report.
    let s = &run.stats;
    println!("\n--- execution statistics ---");
    println!("kernels:              {}", s.name);
    println!(
        "issued requests:      {} (of {} in the batch)",
        s.totals.requests,
        batch.len()
    );
    println!("memory instructions:  {}", s.totals.mem_insts);
    println!("control instructions: {}", s.totals.control_insts);
    println!("conflicts:            {}", s.totals.conflicts());
    println!("makespan:             {:.0} cycles", s.makespan_cycles);
    println!(
        "throughput:           {:.1} Mreq/s",
        run.throughput(tree.device(), batch.len()) / 1e6
    );
}
