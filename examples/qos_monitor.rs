//! QoS monitor — the paper's response-time story (Figs. 2 and 8): conflict
//! detection and resolution make baseline response times *unpredictable*,
//! while Eirene's conflict-free kernels keep them flat.
//!
//! Follows the paper's methodology (§8.1): each run is a fresh execution
//! — a freshly bulk-loaded tree processing one batch — and the variance
//! statistic is the worst-side deviation of per-batch response time from
//! the mean across runs. (A long-lived tree absorbing batch after batch
//! additionally sees periodic *split waves* as cohorts of leaves fill up
//! together; `examples/kvstore.rs` shows that service-loop mode.)
//!
//! ```text
//! cargo run --release --example qos_monitor [runs]
//! ```

use eirene::baselines::common::ConcurrentTree;
use eirene::baselines::{LockTree, StmTree};
use eirene::core::{EireneOptions, EireneTree};
use eirene::sim::{DeviceConfig, KernelStats};
use eirene::workloads::{Distribution, Mix, WorkloadGen, WorkloadSpec};

fn main() {
    let mut runs: usize = 10;
    let mut zipf = false;
    for a in std::env::args().skip(1) {
        if a == "--zipf" {
            zipf = true;
        } else if let Ok(n) = a.parse() {
            runs = n;
        }
    }
    // Default: the paper's 95/5 uniform workload. `--zipf` switches to a
    // skewed update-heavy stress mix where conflicts dominate.
    let spec = WorkloadSpec {
        tree_size: 1 << 14,
        batch_size: 1 << 16,
        mix: if zipf {
            Mix {
                upsert: 0.3,
                delete: 0.0,
                range: 0.0,
                range_len: 4,
            }
        } else {
            Mix::read_heavy()
        },
        distribution: if zipf {
            Distribution::Zipfian { theta: 0.99 }
        } else {
            Distribution::Uniform
        },
        seed: 7,
    };
    let pairs: Vec<(u64, u64)> = spec
        .initial_pairs()
        .iter()
        .map(|&(k, v)| (k as u64, v as u64))
        .collect();
    let headroom = spec.batch_size * runs / 4 + (1 << 12);

    println!(
        "{} workload, {} runs x {} requests\n",
        if zipf {
            "zipfian(0.99) 70/30"
        } else {
            "uniform 95/5"
        },
        runs,
        spec.batch_size
    );
    println!(
        "{:<16}{:>10}{:>10}{:>10}{:>11}{:>15}",
        "tree", "avg ns", "min ns", "max ns", "variance", "conflicts/req"
    );
    let mut aggregates: Vec<(String, KernelStats)> = Vec::new();
    for which in 0..3 {
        let mut gen = WorkloadGen::new(spec.clone());
        let mut per_req = Vec::with_capacity(runs);
        let mut agg = KernelStats::default();
        let mut name = String::new();
        for _ in 0..runs {
            // Fresh execution per run, as in the paper.
            let mut tree: Box<dyn ConcurrentTree> = match which {
                0 => Box::new(StmTree::new(&pairs, DeviceConfig::default(), headroom)),
                1 => Box::new(LockTree::new(&pairs, DeviceConfig::default(), headroom)),
                _ => Box::new(EireneTree::new(
                    &pairs,
                    EireneOptions {
                        headroom_nodes: headroom,
                        ..Default::default()
                    },
                )),
            };
            name = tree.name().to_string();
            let batch = gen.next_batch();
            let run = tree.run_batch(&batch);
            let secs = tree
                .device()
                .config()
                .cycles_to_secs(run.stats.makespan_cycles);
            per_req.push(secs * 1e9 / batch.len() as f64);
            agg.merge(&run.stats);
        }
        let avg = per_req.iter().sum::<f64>() / per_req.len() as f64;
        let min = per_req.iter().copied().fold(f64::INFINITY, f64::min);
        let max = per_req.iter().copied().fold(0.0f64, f64::max);
        let var = ((max - avg).max(avg - min)) / avg * 100.0;
        println!(
            "{name:<16}{avg:>10.2}{min:>10.2}{max:>10.2}{:>10.1}%{:>15.4}",
            var,
            agg.conflicts_per_request()
        );
        aggregates.push((name, agg));
    }

    // Per-warp response-time percentiles from the bounded latency
    // histogram (§8.2's QoS view, at request rather than batch grain).
    let cyc_to_ns = DeviceConfig::default().cycles_to_secs(1.0) * 1e9;
    println!("\nper-request response-time percentiles (warp-cycles -> ns):");
    println!(
        "{:<16}{:>10}{:>10}{:>10}{:>10}{:>10}{:>10}",
        "tree", "p50", "p90", "p99", "p99.9", "max", "avg"
    );
    for (name, agg) in &aggregates {
        println!(
            "{name:<16}{:>10.0}{:>10.0}{:>10.0}{:>10.0}{:>10.0}{:>10.0}",
            agg.response_quantile_cycles(0.50) as f64 * cyc_to_ns,
            agg.response_quantile_cycles(0.90) as f64 * cyc_to_ns,
            agg.response_quantile_cycles(0.99) as f64 * cyc_to_ns,
            agg.response_quantile_cycles(0.999) as f64 * cyc_to_ns,
            agg.max_response_cycles() as f64 * cyc_to_ns,
            agg.avg_response_cycles() * cyc_to_ns,
        );
    }

    // Where each design spends its work: per-phase breakdown (the
    // software analogue of the paper's Nsight profiling, Figs. 1/9/12).
    for (name, agg) in &aggregates {
        let t = &agg.totals;
        println!("\n{name}: per-phase breakdown");
        println!(
            "{:<22}{:>12}{:>12}{:>10}{:>12}{:>8}",
            "phase", "mem_insts", "ctrl_insts", "conflicts", "cycles", "cyc %"
        );
        for (phase, row) in t.phases.iter() {
            if row.is_zero() {
                continue;
            }
            println!(
                "{:<22}{:>12}{:>12}{:>10}{:>12}{:>7.1}%",
                phase.name(),
                row.mem_insts,
                row.control_insts,
                row.conflicts(),
                row.cycles,
                100.0 * row.cycles as f64 / t.cycles.max(1) as f64
            );
        }
        let sums = t.phase_sums();
        assert_eq!(sums.mem_insts, t.mem_insts, "phase rows must sum to totals");
        assert_eq!(sums.cycles, t.cycles, "phase rows must sum to totals");
    }

    println!(
        "\nLower variance = more predictable service: the designs that \
         detect and resolve conflicts during traversal are the ones whose \
         response times move between runs."
    );
}
