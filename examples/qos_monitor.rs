//! QoS monitor — the paper's QoS story (§8), live. Instead of comparing
//! batch-level response-time variance after the fact, this example wires
//! an [`eirene::serve::ServiceObserver`] into a running sharded service
//! and watches the per-shard epoch telemetry stream as it happens:
//!
//! 1. **steady state** — a well-provisioned two-shard service under a
//!    moderate stream; every epoch boundary emits a sample (batch size,
//!    queue depth, watermark lag, cumulative latency percentiles) and the
//!    SLO monitor stays quiet;
//! 2. **overload burst** — a deliberately tiny admission queue under
//!    `AdmitPolicy::Shed` takes a 4x-capacity burst aimed at one shard.
//!    Most of the burst is shed at admission, and the sliding-window
//!    shed-rate objective trips on the very first epoch, emitting
//!    structured breach events in real time;
//! 3. **hot-shard rebalance** — every request targets one shard of a
//!    two-shard map. A forced split halves the hot range mid-run: the
//!    observer streams the topology-change event as it publishes, and
//!    the per-shard `key_count` gauge shows the migrated keys land on
//!    the neighbor.
//!
//! At the end, the sampled counter series is reconciled *exactly*
//! against the shutdown report — live telemetry and final accounting are
//! two views of the same atomics, not approximations of each other.
//!
//! ```text
//! cargo run --release --example qos_monitor
//! ```

use eirene::serve::{
    reconcile_samples, AdmitPolicy, EpochSizing, ObserveConfig, Outcome, RebalanceAction,
    RebalanceEvent, RebalanceSpec, SeriesCollector, ServeConfig, Service, ServiceObserver,
    ShardMap, ShardSample, SloBreach, SloSpec,
};
use eirene::sim::DeviceConfig;
use eirene::workloads::OpKind;
use std::sync::Arc;

/// Forwards every event into a [`SeriesCollector`] for post-hoc analysis
/// and additionally prints breaches the moment the executor emits them.
struct LiveObserver {
    collector: Arc<SeriesCollector>,
}

impl ServiceObserver for LiveObserver {
    fn on_sample(&self, sample: &ShardSample) {
        self.collector.on_sample(sample);
    }

    fn on_breach(&self, breach: &SloBreach) {
        println!("   !! {breach}");
        self.collector.on_breach(breach);
    }

    fn on_rebalance(&self, event: &RebalanceEvent) {
        println!("   >> {event}");
        self.collector.on_rebalance(event);
    }
}

fn main() {
    steady_state();
    overload_burst();
    hot_shard_rebalance();
}

/// A comfortably provisioned service: the sample stream shows the epoch
/// cadence, and a generous SLO never trips.
fn steady_state() {
    println!("== steady state: live per-shard epoch samples ==");
    let pairs: Vec<(u64, u64)> = (1..=4096u64).map(|k| (k, k + 1)).collect();
    let collector = SeriesCollector::new();
    let cfg = ServeConfig {
        map: ShardMap::from_starts(vec![0, 1 << 11]).expect("valid shard starts"),
        sizing: EpochSizing::Fixed(256),
        queue_depth: 1 << 14,
        hold_gate: true,
        observe: ObserveConfig {
            slo: Some(SloSpec {
                // Far above anything this workload produces: quiet run.
                p99_max_cycles: Some(100_000_000),
                shed_rate_max: Some(0.05),
                window_epochs: 8,
            }),
            observer: Some(Arc::new(LiveObserver {
                collector: collector.clone(),
            })),
            ..ObserveConfig::live()
        },
        ..ServeConfig::test_small(2)
    };
    let svc = Service::new(&pairs, cfg);
    let client = svc.client();
    for i in 0..4096u32 {
        client.submit((i % 4096) + 1, OpKind::Query);
    }
    svc.release();
    let report = svc.shutdown();
    report.assert_consistent();

    let device = report.device.clone();
    println!("   shard  epoch  batch  queue    lag   keys  cum p99(us)");
    for s in collector.samples().iter().filter(|s| s.shard == 0) {
        println!(
            "   {:>5}  {:>5}  {:>5}  {:>5}  {:>5}  {:>5}  {:>11.1}{}",
            s.shard,
            s.epoch,
            s.batch_size,
            s.queue_depth,
            s.watermark_lag,
            s.key_count,
            device.cycles_to_secs(s.latency.p99 as f64) * 1e6,
            if s.terminal { "  (terminal)" } else { "" },
        );
    }
    reconcile_samples(&collector.samples(), &report).expect("sampled series must reconcile");
    println!(
        "   {} executed over {} epochs, {} lifecycle spans captured, \
         0 SLO breaches; series reconciles with the report\n",
        report.executed(),
        report.shards.iter().map(|s| s.epochs).sum::<u64>(),
        report.spans().len(),
    );
    assert!(
        collector.breaches().is_empty(),
        "steady run must not breach"
    );
}

/// A 4x-capacity burst into a depth-limited shedding queue: the
/// shed-rate objective trips immediately and breach events stream out.
fn overload_burst() {
    println!("== overload burst: live shed-rate breaches ==");
    let queue_depth = 64usize;
    let burst = 4 * queue_depth;
    let pairs: Vec<(u64, u64)> = (1..=512u64).map(|k| (k, k + 1)).collect();
    let collector = SeriesCollector::new();
    let cfg = ServeConfig {
        map: ShardMap::from_starts(vec![0, 256]).expect("valid shard starts"),
        device: DeviceConfig::test_small(),
        queue_depth,
        policy: AdmitPolicy::Shed,
        hold_gate: true, // nothing drains during the burst: the queue must fill
        observe: ObserveConfig {
            slo: Some(SloSpec {
                p99_max_cycles: None,
                shed_rate_max: Some(0.05),
                window_epochs: 4,
            }),
            observer: Some(Arc::new(LiveObserver {
                collector: collector.clone(),
            })),
            ..ObserveConfig::live()
        },
        ..ServeConfig::test_small(2)
    };
    let svc = Service::new(&pairs, cfg);
    let client = svc.client();
    // Background traffic to shard 1 stays comfortably under its queue.
    for k in 0..32u32 {
        client.submit(256 + k, OpKind::Query);
    }
    // The burst aims every request at shard 0. With the gate held, at
    // most `queue_depth` are admitted; the rest shed at admission.
    let mut shed = 0;
    for k in 0..burst as u32 {
        if client.submit(k % 256, OpKind::Query).try_get() == Some(Outcome::Rejected) {
            shed += 1;
        }
    }
    svc.release();
    let report = svc.shutdown();
    report.assert_consistent();
    reconcile_samples(&collector.samples(), &report).expect("sampled series must reconcile");

    let breaches = collector.breaches();
    println!(
        "   burst of {burst} into a depth-{queue_depth} queue: {shed} shed at \
         admission, {} executed",
        report.executed(),
    );
    println!(
        "   {} shed-rate breach(es) on shard 0; worst window observed \
         {:.0}% against a 5% objective",
        breaches.len(),
        breaches.iter().map(|b| b.observed).fold(0.0f64, f64::max) * 100.0,
    );
    assert!(shed >= 3 * queue_depth, "gate held: burst must mostly shed");
    assert!(
        breaches.iter().any(|b| b.shard == 0),
        "the shed-rate objective must trip on the bursted shard"
    );
    assert!(
        breaches.iter().all(|b| b.shard == 0),
        "background traffic on shard 1 must stay within the SLO"
    );
    println!(
        "\nThe same counters drive both views: the live series the observer \
         streamed and the shutdown report reconcile field-for-field.\n"
    );
}

/// All traffic lands on shard 0 of a two-shard map; a forced split moves
/// the hot boundary mid-run. The observer streams the topology event,
/// and the per-shard key counts show the migrated half on the neighbor.
fn hot_shard_rebalance() {
    println!("== hot-shard rebalance: live topology-change events ==");
    let pairs: Vec<(u64, u64)> = (1..=4096u64).map(|k| (k, k + 1)).collect();
    let collector = SeriesCollector::new();
    let cfg = ServeConfig {
        // Shard 0 owns [0, 2048): with the whole stream aimed there,
        // shard 1 idles while shard 0 does all the work.
        map: ShardMap::from_starts(vec![0, 1 << 11]).expect("valid shard starts"),
        sizing: EpochSizing::Fixed(256),
        queue_depth: 1 << 14,
        // Manual spec: the rebalancer thread runs but only acts when
        // told to, so the demo is deterministic.
        rebalance: Some(RebalanceSpec::manual()),
        observe: ObserveConfig {
            observer: Some(Arc::new(LiveObserver {
                collector: collector.clone(),
            })),
            ..ObserveConfig::live()
        },
        ..ServeConfig::test_small(2)
    };
    let svc = Service::new(&pairs, cfg);
    let client = svc.client();
    for i in 0..1024u32 {
        client.submit((i % 2047) + 1, OpKind::Query);
    }
    // Split the hot shard: quiesce the pair, migrate the upper half of
    // its keys to shard 1, publish the new map. The event prints above
    // via the observer the moment the topology lands.
    svc.force_rebalance(RebalanceAction::Split { shard: 0 });
    while svc.rebalance_attempts() < 1 {
        std::thread::sleep(std::time::Duration::from_micros(50));
    }
    // Clients pick up the published map: the same key band now spreads
    // across both shards.
    for i in 0..1024u32 {
        client.submit((i % 2047) + 1, OpKind::Query);
    }
    let report = svc.shutdown();
    report.assert_consistent();
    reconcile_samples(&collector.samples(), &report).expect("sampled series must reconcile");

    let events = collector.rebalances();
    assert_eq!(events.len(), 1, "exactly the forced split publishes");
    let ev = &events[0];
    assert!(ev.forced && ev.moved_keys > 0);
    println!(
        "   boundary[{}] moved {} -> {}: {} keys migrated shard {} -> {}",
        ev.boundary, ev.old_start, ev.new_start, ev.moved_keys, ev.from, ev.to,
    );
    println!("   final keys per shard:");
    for s in &report.shards {
        println!("   {:>5}  {:>5} keys", s.shard, s.key_count);
    }
    assert!(
        report.shards[1].key_count > 0,
        "the split must hand shard 1 a share of the keys"
    );
    println!(
        "\nThe live event stream and the report agree: rebalances are part \
         of the same observed history as samples and breaches."
    );
}
