//! QoS monitor — the paper's response-time story (Figs. 2 and 8): conflict
//! detection and resolution make baseline response times *unpredictable*,
//! while Eirene's conflict-free kernels keep them flat.
//!
//! Follows the paper's methodology (§8.1): each run is a fresh execution
//! — a freshly bulk-loaded tree processing one batch — and the variance
//! statistic is the worst-side deviation of per-batch response time from
//! the mean across runs. (A long-lived tree absorbing batch after batch
//! additionally sees periodic *split waves* as cohorts of leaves fill up
//! together; `examples/kvstore.rs` shows that service-loop mode.)
//!
//! ```text
//! cargo run --release --example qos_monitor [runs]
//! ```

use eirene::baselines::common::ConcurrentTree;
use eirene::baselines::{LockTree, StmTree};
use eirene::core::{EireneOptions, EireneTree};
use eirene::sim::DeviceConfig;
use eirene::workloads::{Distribution, Mix, WorkloadGen, WorkloadSpec};

fn main() {
    let mut runs: usize = 10;
    let mut zipf = false;
    for a in std::env::args().skip(1) {
        if a == "--zipf" {
            zipf = true;
        } else if let Ok(n) = a.parse() {
            runs = n;
        }
    }
    // Default: the paper's 95/5 uniform workload. `--zipf` switches to a
    // skewed update-heavy stress mix where conflicts dominate.
    let spec = WorkloadSpec {
        tree_size: 1 << 14,
        batch_size: 1 << 16,
        mix: if zipf {
            Mix { upsert: 0.3, delete: 0.0, range: 0.0, range_len: 4 }
        } else {
            Mix::read_heavy()
        },
        distribution: if zipf { Distribution::Zipfian { theta: 0.99 } } else { Distribution::Uniform },
        seed: 7,
    };
    let pairs: Vec<(u64, u64)> =
        spec.initial_pairs().iter().map(|&(k, v)| (k as u64, v as u64)).collect();
    let headroom = spec.batch_size * runs / 4 + (1 << 12);

    println!(
        "{} workload, {} runs x {} requests\n",
        if zipf { "zipfian(0.99) 70/30" } else { "uniform 95/5" },
        runs,
        spec.batch_size
    );
    println!(
        "{:<16}{:>10}{:>10}{:>10}{:>11}{:>15}",
        "tree", "avg ns", "min ns", "max ns", "variance", "conflicts/req"
    );
    for which in 0..3 {
        let mut gen = WorkloadGen::new(spec.clone());
        let mut per_req = Vec::with_capacity(runs);
        let mut conflicts = 0u64;
        let mut reqs = 0u64;
        let mut name = "";
        for _ in 0..runs {
            // Fresh execution per run, as in the paper.
            let mut tree: Box<dyn ConcurrentTree> = match which {
                0 => Box::new(StmTree::new(&pairs, DeviceConfig::default(), headroom)),
                1 => Box::new(LockTree::new(&pairs, DeviceConfig::default(), headroom)),
                _ => Box::new(EireneTree::new(
                    &pairs,
                    EireneOptions { headroom_nodes: headroom, ..Default::default() },
                )),
            };
            name = tree.name();
            let batch = gen.next_batch();
            let run = tree.run_batch(&batch);
            let secs = tree.device().config().cycles_to_secs(run.stats.makespan_cycles);
            per_req.push(secs * 1e9 / batch.len() as f64);
            conflicts += run.stats.totals.conflicts();
            reqs += batch.len() as u64;
        }
        let avg = per_req.iter().sum::<f64>() / per_req.len() as f64;
        let min = per_req.iter().copied().fold(f64::INFINITY, f64::min);
        let max = per_req.iter().copied().fold(0.0f64, f64::max);
        let var = ((max - avg).max(avg - min)) / avg * 100.0;
        println!(
            "{name:<16}{avg:>10.2}{min:>10.2}{max:>10.2}{:>10.1}%{:>15.4}",
            var,
            conflicts as f64 / reqs as f64
        );
    }
    println!(
        "\nLower variance = more predictable service: the designs that \
         detect and resolve conflicts during traversal are the ones whose \
         response times move between runs."
    );
}
