//! A YCSB-style key-value store service loop, the scenario that motivates
//! the paper (§1): requests stream into a host-side buffer and are shipped
//! to the GPU in batches. Compares Eirene with both baselines on the same
//! request stream and reports throughput and per-request instruction
//! counts.
//!
//! ```text
//! cargo run --release --example kvstore [tree_exp] [batch_size] [batches]
//! ```

use eirene::baselines::common::ConcurrentTree;
use eirene::baselines::{LockTree, StmTree};
use eirene::core::{EireneOptions, EireneTree};
use eirene::sim::DeviceConfig;
use eirene::workloads::{Mix, WorkloadGen, WorkloadSpec};

fn main() {
    let mut args = std::env::args().skip(1);
    let exp: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(14);
    let batch_size: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1 << 16);
    let batches: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let spec = WorkloadSpec {
        tree_size: 1 << exp,
        batch_size,
        mix: Mix::read_heavy(), // the paper's default 95% query / 5% update
        distribution: eirene::workloads::Distribution::Uniform,
        seed: 2024,
    };
    let pairs: Vec<(u64, u64)> = spec
        .initial_pairs()
        .iter()
        .map(|&(k, v)| (k as u64, v as u64))
        .collect();
    println!("KV store: tree 2^{exp} keys, {batches} batches x {batch_size} requests, 95/5 mix\n");

    let headroom = batch_size * batches / 8 + (1 << 12);
    let mut trees: Vec<Box<dyn ConcurrentTree>> = vec![
        Box::new(StmTree::new(&pairs, DeviceConfig::default(), headroom)),
        Box::new(LockTree::new(&pairs, DeviceConfig::default(), headroom)),
        Box::new(EireneTree::new(
            &pairs,
            EireneOptions {
                headroom_nodes: headroom,
                ..Default::default()
            },
        )),
    ];

    println!(
        "{:<16}{:>14}{:>12}{:>12}{:>14}",
        "tree", "Mreq/s", "mem/req", "ctrl/req", "conflicts/req"
    );
    let mut eirene_tput = 0.0;
    let mut baseline_best = 0.0f64;
    for tree in trees.iter_mut() {
        let mut gen = WorkloadGen::new(spec.clone());
        tree.run_batch(&gen.next_batch()); // warm-up (unmeasured)
        let mut total_reqs = 0usize;
        let mut total_secs = 0.0;
        let mut mem = 0u64;
        let mut ctrl = 0u64;
        let mut confl = 0u64;
        for _ in 0..batches {
            let batch = gen.next_batch();
            let run = tree.run_batch(&batch);
            total_reqs += batch.len();
            total_secs += tree
                .device()
                .config()
                .cycles_to_secs(run.stats.makespan_cycles);
            mem += run.stats.totals.mem_insts;
            ctrl += run.stats.totals.control_insts;
            confl += run.stats.totals.conflicts();
        }
        let tput = total_reqs as f64 / total_secs;
        println!(
            "{:<16}{:>14.1}{:>12.1}{:>12.1}{:>14.4}",
            tree.name(),
            tput / 1e6,
            mem as f64 / total_reqs as f64,
            ctrl as f64 / total_reqs as f64,
            confl as f64 / total_reqs as f64
        );
        if tree.name() == "Eirene" {
            eirene_tput = tput;
        } else {
            baseline_best = baseline_best.max(tput);
        }
    }
    println!(
        "\nEirene speedup over the best baseline: {:.2}x",
        eirene_tput / baseline_best
    );
}
