//! Tour of the sharded serving layer (`eirene-serve`): a four-shard
//! service fronting four simulated devices, exercised three ways —
//!
//! 1. asynchronous point traffic from concurrent client threads, with a
//!    cross-shard range query split and merged transparently;
//! 2. admission control: a deliberately tiny queue under `Shed`, and a
//!    zero deadline that times out before its epoch forms;
//! 3. a closed-loop shard-scaling measurement (1 vs 4 shards) on a
//!    YCSB-C stream, printing aggregate throughput and tail latency from
//!    the per-shard telemetry.
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```

use eirene::serve::{AdmitPolicy, EpochSizing, Outcome, ServeConfig, Service, ShardMap};
use eirene::sim::DeviceConfig;
use eirene::workloads::{Distribution, Mix, OpKind, Response, WorkloadGen, WorkloadSpec};
use std::time::Duration;

fn main() {
    async_clients();
    admission_control();
    shard_scaling();
}

/// Concurrent clients against a live (ungated) four-shard service.
fn async_clients() {
    println!("== async clients, cross-shard ranges ==");
    let map =
        ShardMap::from_starts(vec![0, 1 << 10, 2 << 10, 3 << 10]).expect("valid shard starts");
    let pairs: Vec<(u64, u64)> = (1..=2000u64).map(|k| (2 * k, 2 * k + 1)).collect();
    let cfg = ServeConfig {
        map,
        device: DeviceConfig::test_small(),
        sizing: EpochSizing::Fixed(256),
        linger: Duration::from_micros(100),
        ..ServeConfig::test_small(4)
    };
    let svc = Service::new(&pairs, cfg);
    std::thread::scope(|scope| {
        for t in 0..4u32 {
            let client = svc.client();
            scope.spawn(move || {
                for i in 0..200u32 {
                    // Each thread writes its own stripe and reads it back.
                    let key = 4001 + 8 * (i % 64) + t;
                    client.submit(key, OpKind::Upsert(t * 1000 + i));
                    let got = client.submit(key, OpKind::Query).wait();
                    assert_eq!(got, Outcome::Done(Response::Value(Some(t * 1000 + i))));
                }
            });
        }
    });
    // One range spanning three shard boundaries, answered by three
    // devices and merged positionally.
    let client = svc.client();
    let ticket = client.submit((1 << 10) - 8, OpKind::Range { len: 2100 });
    match ticket.wait() {
        Outcome::Done(Response::Range(slots)) => {
            let hits = slots.iter().filter(|s| s.is_some()).count();
            println!(
                "   range over 3 boundaries: {} slots, {hits} occupied",
                slots.len()
            );
        }
        other => panic!("range failed: {other:?}"),
    }
    let report = svc.shutdown();
    report.assert_consistent();
    println!(
        "   {} requests over {} shards, {} epochs, p99 latency {:.1} us\n",
        report.executed(),
        report.shards.len(),
        report.shards.iter().map(|s| s.epochs).sum::<u64>(),
        report.device.cycles_to_secs(report.latency().p99() as f64) * 1e6,
    );
}

/// Bounded queues shed, deadlines expire — without executing anything.
fn admission_control() {
    println!("== admission control ==");
    let pairs: Vec<(u64, u64)> = (1..=64u64).map(|k| (k, k + 1)).collect();
    let cfg = ServeConfig {
        map: ShardMap::uniform(1),
        queue_depth: 8,
        policy: AdmitPolicy::Shed,
        hold_gate: true, // nothing drains until release(): the queue must fill
        ..ServeConfig::test_small(1)
    };
    let svc = Service::new(&pairs, cfg);
    let client = svc.client();
    let mut shed = 0;
    let deadline = client.submit_with_deadline(1, OpKind::Query, Duration::ZERO);
    for k in 0..16u32 {
        if client.submit(k, OpKind::Query).try_get() == Some(Outcome::Rejected) {
            shed += 1;
        }
    }
    svc.release();
    let report = svc.shutdown();
    assert_eq!(deadline.wait(), Outcome::TimedOut);
    println!(
        "   16 submissions into a depth-8 queue: {shed} shed at admission, \
         {} executed, {} timed out (the zero-deadline probe)\n",
        report.executed(),
        report.timed_out()
    );
}

/// Closed-loop YCSB-C throughput, 1 shard vs 4.
fn shard_scaling() {
    println!("== shard scaling, YCSB-C ==");
    let spec = WorkloadSpec {
        tree_size: 1 << 13,
        batch_size: 512,
        mix: Mix::ycsb_c(),
        distribution: Distribution::Uniform,
        seed: 7,
    };
    let pairs: Vec<(u64, u64)> = spec
        .initial_pairs()
        .into_iter()
        .map(|(k, v)| (k as u64, v as u64))
        .collect();
    let mut base = 0.0;
    for shards in [1usize, 4] {
        let width = (spec.key_domain() / shards as u64).max(1) as u32;
        let cfg = ServeConfig {
            map: ShardMap::from_starts((0..shards as u32).map(|i| i * width).collect())
                .expect("valid shard starts"),
            sizing: EpochSizing::Fixed(512),
            queue_depth: 1 << 14,
            hold_gate: true,
            ..ServeConfig::test_small(shards)
        };
        let svc = Service::new(&pairs, cfg);
        let client = svc.client();
        for req in WorkloadGen::new(spec.clone()).next_requests(8192) {
            client.submit(req.key, req.op);
        }
        svc.release();
        let report = svc.shutdown();
        report.assert_consistent();
        let tput = report.throughput();
        if base == 0.0 {
            base = tput;
        }
        println!(
            "   {shards} shard(s): {:>7.1} Mreq/s ({:.2}x), p99 {:.1} us",
            tput / 1e6,
            tput / base,
            report.device.cycles_to_secs(report.latency().p99() as f64) * 1e6,
        );
    }
}
