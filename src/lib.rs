//! Umbrella crate for the Eirene reproduction.
//!
//! Re-exports every sub-crate so downstream users (and the repository's
//! integration tests and examples) can depend on a single `eirene` crate.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

pub use eirene_baselines as baselines;
pub use eirene_btree as btree;
pub use eirene_check as check;
pub use eirene_core as core;
pub use eirene_primitives as primitives;
pub use eirene_serve as serve;
pub use eirene_sim as sim;
pub use eirene_stm as stm;
pub use eirene_workloads as workloads;
