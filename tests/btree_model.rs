//! Property-based differential testing of the B+tree substrate against
//! `std::collections::BTreeMap`: arbitrary op sequences must produce
//! identical observable behaviour and preserve every structural invariant.

use eirene::btree::build::{arena_budget, bulk_build};
use eirene::btree::refops;
use eirene::btree::validate::validate;
use eirene::sim::GlobalMemory;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum Op {
    Get(u64),
    Upsert(u64, u64),
    Delete(u64),
    Range(u64, u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..200).prop_map(Op::Get),
        ((1u64..200), any::<u64>()).prop_map(|(k, v)| Op::Upsert(k, v)),
        (1u64..200).prop_map(Op::Delete),
        ((1u64..190), (1u32..12)).prop_map(|(lo, len)| Op::Range(lo, len)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_refops_match_btreemap(
        initial in 1u64..60,
        ops in proptest::collection::vec(op_strategy(), 1..300),
    ) {
        let mem = GlobalMemory::new(arena_budget(initial as usize, 2048));
        let pairs: Vec<(u64, u64)> = (1..=initial).map(|i| (2 * i, i)).collect();
        let tree = bulk_build(&mem, &pairs);
        let mut model: BTreeMap<u64, u64> = pairs.iter().copied().collect();

        for op in &ops {
            match *op {
                Op::Get(k) => {
                    prop_assert_eq!(refops::get(&mem, &tree, k), model.get(&k).copied());
                }
                Op::Upsert(k, v) => {
                    prop_assert_eq!(refops::upsert(&mem, &tree, k, v), model.insert(k, v));
                }
                Op::Delete(k) => {
                    prop_assert_eq!(refops::delete(&mem, &tree, k), model.remove(&k));
                }
                Op::Range(lo, len) => {
                    let got = refops::range(&mem, &tree, lo, len);
                    for off in 0..len as u64 {
                        prop_assert_eq!(
                            got[off as usize],
                            model.get(&(lo + off)).copied(),
                            "range offset {} from {}", off, lo
                        );
                    }
                }
            }
        }
        // Full-state comparison + invariants at the end.
        let contents = refops::contents(&mem, &tree);
        let expect: Vec<(u64, u64)> = model.into_iter().collect();
        prop_assert_eq!(contents, expect);
        validate(&mem, &tree).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn prop_bulk_build_validates_at_any_size(n in 1usize..3000) {
        let mem = GlobalMemory::new(arena_budget(n, 64));
        let pairs: Vec<(u64, u64)> = (1..=n as u64).map(|i| (3 * i, i)).collect();
        let tree = bulk_build(&mem, &pairs);
        let stats = validate(&mem, &tree).map_err(TestCaseError::fail)?;
        prop_assert_eq!(stats.keys, n);
        // Every loaded key must be findable.
        for &(k, v) in pairs.iter().step_by((n / 17).max(1)) {
            prop_assert_eq!(refops::get(&mem, &tree, k), Some(v));
        }
    }

    #[test]
    fn prop_monotone_insert_stream_keeps_balance(
        n in 1usize..500,
        base in 1u64..1000,
    ) {
        // Ascending inserts are the worst case for rightmost-leaf splits.
        let mem = GlobalMemory::new(arena_budget(8, n * 8 + 256));
        let tree = bulk_build(&mem, &[(1, 1), (2, 2)]);
        for i in 0..n as u64 {
            refops::upsert(&mem, &tree, base + i, i);
        }
        let stats = validate(&mem, &tree).map_err(TestCaseError::fail)?;
        prop_assert!(stats.keys >= n);
        // Height stays logarithmic (fanout 16, generous bound).
        prop_assert!(stats.height <= 1 + (n as f64).log2() as u64);
    }
}

#[test]
fn descending_insert_stream_keeps_left_spine_valid() {
    // Descending inserts drive everything through the leftmost clamp.
    let mem = GlobalMemory::new(arena_budget(8, 4096));
    let tree = bulk_build(&mem, &[(1_000_000, 0)]);
    for i in (1..=2000u64).rev() {
        refops::upsert(&mem, &tree, i, i);
    }
    validate(&mem, &tree).unwrap();
    for i in 1..=2000u64 {
        assert_eq!(refops::get(&mem, &tree, i), Some(i));
    }
}

#[test]
fn interleaved_delete_insert_cycles_preserve_invariants() {
    let mem = GlobalMemory::new(arena_budget(1000, 1 << 14));
    let pairs: Vec<(u64, u64)> = (1..=1000u64).map(|i| (2 * i, i)).collect();
    let tree = bulk_build(&mem, &pairs);
    // Delete and reinsert the same band repeatedly: exercises empty
    // leaves, re-fills, and fence staleness.
    for round in 0..5u64 {
        for k in (100..300u64).step_by(2) {
            refops::delete(&mem, &tree, k);
        }
        validate(&mem, &tree).unwrap();
        for k in (100..300u64).step_by(2) {
            assert_eq!(refops::upsert(&mem, &tree, k, round), None);
        }
        validate(&mem, &tree).unwrap();
    }
    assert_eq!(refops::get(&mem, &tree, 200), Some(4));
}
