//! Edge-case and failure-injection tests for the Eirene pipeline: batch
//! shapes the figures never exercise but a deployed system would see.

use eirene::baselines::common::ConcurrentTree;
use eirene::core::plan::IssuedKind;
use eirene::core::{EireneOptions, EireneTree};
use eirene::workloads::{Batch, Mix, OpKind, Oracle, Request, Response, SequentialOracle};

fn pairs(n: u64) -> Vec<(u64, u64)> {
    (1..=n).map(|i| (2 * i, 2 * i + 1)).collect()
}

fn tree(n: u64) -> EireneTree {
    EireneTree::new(&pairs(n), EireneOptions::test_small())
}

#[test]
fn empty_batch_is_a_noop() {
    let mut t = tree(100);
    let run = t.run_batch(&Batch::new(vec![]));
    assert!(run.responses.is_empty());
    assert_eq!(run.stats.totals.requests, 0);
}

#[test]
fn single_request_batch() {
    let mut t = tree(100);
    let run = t.run_batch(&Batch::new(vec![Request::query(50, 0)]));
    assert_eq!(run.responses, vec![Response::Value(Some(51))]);
}

#[test]
fn all_range_batch() {
    let mut t = tree(500);
    let reqs: Vec<Request> = (0..64u64)
        .map(|i| Request::range((i * 13 + 1) as u32, 6, i))
        .collect();
    let batch = Batch::new(reqs.clone());
    let got = t.run_batch(&batch).responses;
    let init: Vec<(u32, u32)> = pairs(500)
        .iter()
        .map(|&(k, v)| (k as u32, v as u32))
        .collect();
    let want = SequentialOracle::load(&init).run_batch(&batch);
    assert_eq!(got, want);
}

#[test]
fn all_delete_batch_empties_keys() {
    let mut t = tree(64);
    let batch = Batch::new(
        (1..=64u32)
            .map(|i| Request::delete(2 * i, i as u64))
            .collect(),
    );
    let run = t.run_batch(&batch);
    assert!(run.responses.iter().all(|r| *r == Response::Done));
    let q = Batch::new(
        (1..=64u32)
            .map(|i| Request::query(2 * i, i as u64))
            .collect(),
    );
    let run = t.run_batch(&q);
    assert!(run.responses.iter().all(|r| *r == Response::Value(None)));
}

#[test]
fn delete_then_query_then_reinsert_same_key_in_one_batch() {
    let mut t = tree(64);
    let batch = Batch::new(vec![
        Request::delete(10, 0),
        Request::query(10, 1),
        Request::upsert(10, 42, 2),
        Request::query(10, 3),
        Request::delete(10, 4),
        Request::query(10, 5),
    ]);
    let run = t.run_batch(&batch);
    assert_eq!(run.responses[1], Response::Value(None));
    assert_eq!(run.responses[3], Response::Value(Some(42)));
    assert_eq!(run.responses[5], Response::Value(None));
    // Final state: deleted.
    let q = Batch::new(vec![Request::query(10, 0)]);
    assert_eq!(t.run_batch(&q).responses[0], Response::Value(None));
}

#[test]
fn issued_kind_follows_last_state_op() {
    let t = tree(64);
    // query-last but issued must be the delete (last *state* op).
    let batch = Batch::new(vec![
        Request::upsert(8, 1, 0),
        Request::delete(8, 1),
        Request::query(8, 2),
    ]);
    let plan = t.plan(&batch);
    assert_eq!(plan.issued.len(), 1);
    assert!(matches!(plan.issued[0].kind, IssuedKind::Delete));
}

#[test]
fn range_at_key_domain_boundaries() {
    let mut t = tree(64); // keys 2..=128
    let batch = Batch::new(vec![
        Request::range(1, 4, 0),            // straddles the low edge
        Request::range(126, 8, 1),          // runs past the high edge
        Request::range(u32::MAX - 2, 3, 2), // saturating upper bound
    ]);
    let run = t.run_batch(&batch);
    // Keys 1..=4: only 2 (value 3) and 4 (value 5) exist.
    assert_eq!(
        run.responses[0],
        Response::Range(vec![None, Some(3), None, Some(5)])
    );
    // Keys 126..=133: only 126 (value 127) and 128 (value 129) exist.
    assert_eq!(
        run.responses[1],
        Response::Range(vec![
            Some(127),
            None,
            Some(129),
            None,
            None,
            None,
            None,
            None
        ])
    );
    assert_eq!(run.responses[2], Response::Range(vec![None, None, None]));
}

#[test]
fn range_covering_deleted_and_inserted_keys_same_batch() {
    let mut t = tree(64);
    // Keys 10 and 12 exist; delete 10, insert 11, range over [9, 13] at
    // various timestamps.
    let batch = Batch::new(vec![
        Request::range(9, 5, 0), // pre-everything
        Request::delete(10, 1),
        Request::range(9, 5, 2), // 10 gone
        Request::upsert(11, 77, 3),
        Request::range(9, 5, 4), // 11 present
    ]);
    let got = t.run_batch(&batch).responses;
    let init: Vec<(u32, u32)> = pairs(64)
        .iter()
        .map(|&(k, v)| (k as u32, v as u32))
        .collect();
    let want = SequentialOracle::load(&init).run_batch(&batch);
    assert_eq!(got, want);
}

#[test]
fn duplicate_heavy_batch_issues_once_per_key() {
    let mut t = tree(32);
    // 512 requests over exactly 2 keys.
    let reqs: Vec<Request> = (0..512u64)
        .map(|ts| {
            if ts % 2 == 0 {
                Request::upsert(4, ts as u32, ts)
            } else {
                Request::query(6, ts)
            }
        })
        .collect();
    let plan = t.plan(&Batch::new(reqs.clone()));
    assert_eq!(plan.issued.len(), 2);
    assert_eq!(plan.combined_away(), 510);
    let run = t.run_batch(&Batch::new(reqs));
    assert_eq!(run.stats.totals.requests, 2);
    // Every query response is the untouched key-6 value.
    for (i, r) in run.responses.iter().enumerate() {
        if i % 2 == 1 {
            assert_eq!(*r, Response::Value(Some(7)));
        }
    }
}

#[test]
fn update_mix_preset_matches_oracle_multi_batch() {
    use eirene::workloads::{Distribution, WorkloadGen, WorkloadSpec};
    let spec = WorkloadSpec {
        tree_size: 1 << 9,
        batch_size: 1024,
        mix: Mix::ycsb_a(),
        distribution: Distribution::Zipfian { theta: 0.8 },
        seed: 17,
    };
    let init = spec.initial_pairs();
    let p64: Vec<(u64, u64)> = init.iter().map(|&(k, v)| (k as u64, v as u64)).collect();
    let mut t = EireneTree::new(&p64, EireneOptions::test_small());
    let mut oracle = SequentialOracle::load(&init);
    let mut gen = WorkloadGen::new(spec);
    for _ in 0..3 {
        let batch = gen.next_batch();
        assert_eq!(t.run_batch(&batch).responses, oracle.run_batch(&batch));
    }
}

#[test]
fn queries_on_nonexistent_key_ranges_share_results() {
    let mut t = tree(64);
    // All queries on one absent key: one issue, shared None.
    let batch = Batch::new((0..100u64).map(|ts| Request::query(999, ts)).collect());
    let run = t.run_batch(&batch);
    assert_eq!(run.stats.totals.requests, 1);
    assert!(run.responses.iter().all(|r| *r == Response::Value(None)));
}

#[test]
fn mixed_op_kinds_on_adjacent_keys_keep_kernel_partition_disjoint() {
    let mut t = tree(256);
    let mut reqs = Vec::new();
    for ts in 0..256u64 {
        let k = (ts % 16) as u32 * 2 + 100;
        reqs.push(Request {
            key: k,
            op: match ts % 4 {
                0 => OpKind::Query,
                1 => OpKind::Upsert(ts as u32),
                2 => OpKind::Range { len: 4 },
                _ => OpKind::Delete,
            },
            ts,
        });
    }
    let batch = Batch::new(reqs);
    let plan = t.plan(&batch);
    // Every run with state ops must be issued as an update, never a query.
    for is in &plan.issued {
        let run = &plan.runs[is.run as usize];
        assert_eq!(
            run.has_state_ops,
            !matches!(is.kind, IssuedKind::Query),
            "key {}",
            is.key
        );
    }
    let got = t.run_batch(&batch).responses;
    let init: Vec<(u32, u32)> = pairs(256)
        .iter()
        .map(|&(k, v)| (k as u32, v as u32))
        .collect();
    let want = SequentialOracle::load(&init).run_batch(&batch);
    assert_eq!(got, want);
}
