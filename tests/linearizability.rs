//! The paper's central correctness claim (§6): Eirene's concurrent
//! execution is linearizable — every batch produces exactly the results of
//! a sequential execution in logical-timestamp order. These tests check
//! the claim mechanically against the sequential oracle, including with
//! property-based random workloads, multi-batch histories, range queries,
//! and skewed (high-conflict) key distributions.

use eirene::baselines::common::ConcurrentTree;
use eirene::btree::refops;
use eirene::btree::validate::validate;
use eirene::core::{EireneOptions, EireneTree};
use eirene::workloads::{
    Batch, Distribution, Mix, OpKind, Oracle, Request, Response, SequentialOracle, WorkloadGen,
    WorkloadSpec,
};
use proptest::prelude::*;

fn pairs(n: u64) -> Vec<(u64, u64)> {
    (1..=n).map(|i| (2 * i, 2 * i + 1)).collect()
}

fn pairs32(n: u64) -> Vec<(u32, u32)> {
    (1..=n)
        .map(|i| ((2 * i) as u32, (2 * i + 1) as u32))
        .collect()
}

fn check_batch_against_oracle(tree: &mut EireneTree, oracle: &mut SequentialOracle, batch: &Batch) {
    let got = tree.run_batch(batch).responses;
    let want = oracle.run_batch(batch);
    for i in 0..batch.len() {
        assert_eq!(
            got[i], want[i],
            "response {i} diverges for {:?}",
            batch.requests[i]
        );
    }
    // Structural invariants and final state must also agree.
    validate(tree.device().mem(), tree.handle()).expect("tree invariants");
    let tree_contents = refops::contents(tree.device().mem(), tree.handle());
    let oracle_contents: Vec<(u64, u64)> = oracle
        .contents()
        .iter()
        .map(|(&k, &v)| (k as u64, v as u64))
        .collect();
    assert_eq!(tree_contents, oracle_contents, "final tree state diverges");
}

#[test]
fn single_key_hammering_is_linearizable() {
    // 2048 requests all on one key: the worst case for key conflicts and
    // the best case for combining.
    let mut tree = EireneTree::new(&pairs(256), EireneOptions::test_small());
    let mut oracle = SequentialOracle::load(&pairs32(256));
    let ops: Vec<(u32, OpKind)> = (0..2048u32)
        .map(|i| {
            let op = match i % 5 {
                0 => OpKind::Upsert(i),
                1 => OpKind::Delete,
                _ => OpKind::Query,
            };
            (128, op)
        })
        .collect();
    let batch = Batch::from_ops(ops);
    check_batch_against_oracle(&mut tree, &mut oracle, &batch);
}

#[test]
fn multi_batch_history_stays_linearizable() {
    let spec = WorkloadSpec {
        tree_size: 1 << 11,
        batch_size: 2048,
        mix: Mix {
            upsert: 0.25,
            delete: 0.1,
            range: 0.05,
            range_len: 4,
        },
        distribution: Distribution::Uniform,
        seed: 99,
    };
    let init = spec.initial_pairs();
    let p64: Vec<(u64, u64)> = init.iter().map(|&(k, v)| (k as u64, v as u64)).collect();
    let mut tree = EireneTree::new(&p64, EireneOptions::test_small());
    let mut oracle = SequentialOracle::load(&init);
    let mut gen = WorkloadGen::new(spec);
    for _ in 0..4 {
        let batch = gen.next_batch();
        check_batch_against_oracle(&mut tree, &mut oracle, &batch);
    }
}

#[test]
fn zipfian_contention_is_linearizable() {
    // Heavy skew concentrates many requests on few keys — the regime
    // where baselines conflict most and combining matters most.
    let spec = WorkloadSpec {
        tree_size: 1 << 10,
        batch_size: 4096,
        mix: Mix {
            upsert: 0.3,
            delete: 0.05,
            range: 0.0,
            range_len: 4,
        },
        distribution: Distribution::Zipfian { theta: 0.99 },
        seed: 5,
    };
    let init = spec.initial_pairs();
    let p64: Vec<(u64, u64)> = init.iter().map(|&(k, v)| (k as u64, v as u64)).collect();
    let mut tree = EireneTree::new(&p64, EireneOptions::test_small());
    let mut oracle = SequentialOracle::load(&init);
    let mut gen = WorkloadGen::new(spec);
    let batch = gen.next_batch();
    check_batch_against_oracle(&mut tree, &mut oracle, &batch);
}

#[test]
fn range_queries_interleaved_with_updates_are_linearizable() {
    let mut tree = EireneTree::new(&pairs(512), EireneOptions::test_small());
    let mut oracle = SequentialOracle::load(&pairs32(512));
    // Dense interleaving of ranges and updates over a small key window.
    let mut reqs = Vec::new();
    for i in 0..600u64 {
        let k = 100 + (i % 40) as u32;
        let op = match i % 4 {
            0 => OpKind::Upsert(i as u32),
            1 => OpKind::Range { len: 8 },
            2 => OpKind::Delete,
            _ => OpKind::Query,
        };
        reqs.push(Request { key: k, op, ts: i });
    }
    let batch = Batch::new(reqs);
    check_batch_against_oracle(&mut tree, &mut oracle, &batch);
}

#[test]
fn responses_are_deterministic_across_runs() {
    // Scheduling is nondeterministic; linearizable results must not be.
    let spec = WorkloadSpec {
        tree_size: 1 << 10,
        batch_size: 4096,
        mix: Mix {
            upsert: 0.2,
            delete: 0.05,
            range: 0.02,
            range_len: 4,
        },
        distribution: Distribution::Uniform,
        seed: 123,
    };
    let p64: Vec<(u64, u64)> = spec
        .initial_pairs()
        .iter()
        .map(|&(k, v)| (k as u64, v as u64))
        .collect();
    let batch = WorkloadGen::new(spec).next_batch();
    let r1 = EireneTree::new(&p64, EireneOptions::test_small())
        .run_batch(&batch)
        .responses;
    let r2 = EireneTree::new(&p64, EireneOptions::test_small())
        .run_batch(&batch)
        .responses;
    assert_eq!(r1, r2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random batches over a small key domain (maximal conflict density)
    /// must match the oracle response-for-response and state-for-state.
    #[test]
    fn prop_random_batches_match_oracle(
        ops in proptest::collection::vec(
            (1u32..64, 0u8..10, any::<u32>()),
            1..400,
        )
    ) {
        let init = pairs32(16); // keys 2..=32
        let p64: Vec<(u64, u64)> = init.iter().map(|&(k, v)| (k as u64, v as u64)).collect();
        let mut tree = EireneTree::new(&p64, EireneOptions::test_small());
        let mut oracle = SequentialOracle::load(&init);
        let reqs: Vec<Request> = ops
            .iter()
            .enumerate()
            .map(|(ts, &(key, sel, val))| {
                let op = match sel {
                    0..=2 => OpKind::Upsert(val),
                    3 => OpKind::Delete,
                    4 => OpKind::Range { len: 1 + (val % 8) },
                    _ => OpKind::Query,
                };
                Request { key, op, ts: ts as u64 }
            })
            .collect();
        let batch = Batch::new(reqs);
        let got = tree.run_batch(&batch).responses;
        let want = oracle.run_batch(&batch);
        prop_assert_eq!(&got, &want);
        validate(tree.device().mem(), tree.handle()).map_err(|e| {
            TestCaseError::fail(format!("invariant violation: {e}"))
        })?;
    }

    /// Permuting the *positions* of requests while keeping their
    /// timestamps must not change any response: only logical time matters.
    #[test]
    fn prop_results_depend_on_timestamps_not_positions(
        seed in 0u64..1000,
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let init = pairs32(64);
        let p64: Vec<(u64, u64)> = init.iter().map(|&(k, v)| (k as u64, v as u64)).collect();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut reqs: Vec<Request> = (0..200u64)
            .map(|ts| {
                let key = 2 * (1 + (ts as u32 * 7 + seed as u32) % 64);
                let op = match ts % 3 {
                    0 => OpKind::Upsert(ts as u32),
                    1 => OpKind::Query,
                    _ => OpKind::Delete,
                };
                Request { key, op, ts }
            })
            .collect();
        let mut t1 = EireneTree::new(&p64, EireneOptions::test_small());
        let batch1 = Batch::new(reqs.clone());
        let mut r1 = t1.run_batch(&batch1).responses;

        reqs.shuffle(&mut rng);
        let mut t2 = EireneTree::new(&p64, EireneOptions::test_small());
        let batch2 = Batch::new(reqs.clone());
        let r2 = t2.run_batch(&batch2).responses;

        // Align by timestamp before comparing.
        let mut order1: Vec<usize> = (0..batch1.len()).collect();
        order1.sort_by_key(|&i| batch1.requests[i].ts);
        let mut order2: Vec<usize> = (0..batch2.len()).collect();
        order2.sort_by_key(|&i| batch2.requests[i].ts);
        let by_ts1: Vec<&Response> = order1.iter().map(|&i| &r1[i]).collect();
        let by_ts2: Vec<&Response> = order2.iter().map(|&i| &r2[i]).collect();
        prop_assert_eq!(by_ts1, by_ts2);
        r1.clear();
    }
}

#[test]
fn equal_timestamp_range_before_update_sees_old_value() {
    // Range query and upsert on a covered key share a raw timestamp; the
    // range comes first in the batch, so the oracle's stable sort runs it
    // first and it must observe the OLD value. Regression: the resolve
    // pass used a raw `ts <` comparison, which always resolved the
    // equal-ts artificial query after the point request and handed the
    // range the new value.
    let init = pairs(8); // keys 2..=16, key 10 -> value 11
    let mut tree = EireneTree::new(&init, EireneOptions::test_small());
    let mut oracle = SequentialOracle::load(&pairs32(8));
    let batch = Batch::new(vec![
        Request::range(8, 5, 7),    // covers key 10, ts 7, batch pos 0
        Request::upsert(10, 99, 7), // same ts, batch pos 1
    ]);
    check_batch_against_oracle(&mut tree, &mut oracle, &batch);
    let got = {
        let mut t = EireneTree::new(&init, EireneOptions::test_small());
        t.run_batch(&batch).responses
    };
    match &got[0] {
        Response::Range(slots) => {
            assert_eq!(
                slots[2],
                Some(11),
                "range at equal ts but earlier batch position must see the old value"
            );
        }
        other => panic!("expected a range response, got {other:?}"),
    }
}

#[test]
fn equal_timestamp_update_before_range_sees_new_value() {
    // Mirror case: the upsert is earlier in the batch, so the equal-ts
    // range must observe the NEW value.
    let init = pairs(8);
    let mut tree = EireneTree::new(&init, EireneOptions::test_small());
    let mut oracle = SequentialOracle::load(&pairs32(8));
    let batch = Batch::new(vec![
        Request::upsert(10, 99, 7), // batch pos 0
        Request::range(8, 5, 7),    // same ts, batch pos 1
    ]);
    check_batch_against_oracle(&mut tree, &mut oracle, &batch);
    let got = {
        let mut t = EireneTree::new(&init, EireneOptions::test_small());
        t.run_batch(&batch).responses
    };
    match &got[1] {
        Response::Range(slots) => {
            assert_eq!(
                slots[2],
                Some(99),
                "range at equal ts but later batch position must see the new value"
            );
        }
        other => panic!("expected a range response, got {other:?}"),
    }
}

#[test]
fn equal_timestamp_delete_vs_range_ties_break_by_batch_position() {
    // Same tie-break with a delete as the state op, both orders.
    let init = pairs(8);
    let run = |reqs: Vec<Request>| {
        let mut tree = EireneTree::new(&init, EireneOptions::test_small());
        let mut oracle = SequentialOracle::load(&pairs32(8));
        let batch = Batch::new(reqs);
        check_batch_against_oracle(&mut tree, &mut oracle, &batch);
    };
    run(vec![Request::range(8, 5, 3), Request::delete(10, 3)]);
    run(vec![Request::delete(10, 3), Request::range(8, 5, 3)]);
}
