//! The paper's central correctness claim (§6): Eirene's concurrent
//! execution is linearizable — every batch produces exactly the results of
//! a sequential execution in logical-timestamp order. These tests check
//! the claim mechanically against the sequential oracle, including with
//! property-based random workloads, multi-batch histories, range queries,
//! and skewed (high-conflict) key distributions.

use eirene::baselines::common::ConcurrentTree;
use eirene::btree::refops;
use eirene::btree::validate::validate;
use eirene::core::{EireneOptions, EireneTree};
use eirene::serve::{AdmitPolicy, EpochSizing, Outcome, ServeConfig, Service, ShardMap, Ticket};
use eirene::sim::DeviceConfig;
use eirene::workloads::{
    Batch, Distribution, Mix, OpKind, Oracle, Request, Response, SequentialOracle, WorkloadGen,
    WorkloadSpec,
};
use proptest::prelude::*;
use std::time::Duration;

fn pairs(n: u64) -> Vec<(u64, u64)> {
    (1..=n).map(|i| (2 * i, 2 * i + 1)).collect()
}

fn pairs32(n: u64) -> Vec<(u32, u32)> {
    (1..=n)
        .map(|i| ((2 * i) as u32, (2 * i + 1) as u32))
        .collect()
}

fn check_batch_against_oracle(tree: &mut EireneTree, oracle: &mut SequentialOracle, batch: &Batch) {
    let got = tree.run_batch(batch).responses;
    let want = oracle.run_batch(batch);
    for i in 0..batch.len() {
        assert_eq!(
            got[i], want[i],
            "response {i} diverges for {:?}",
            batch.requests[i]
        );
    }
    // Structural invariants and final state must also agree.
    validate(tree.device().mem(), tree.handle()).expect("tree invariants");
    let tree_contents = refops::contents(tree.device().mem(), tree.handle());
    let oracle_contents: Vec<(u64, u64)> = oracle
        .contents()
        .iter()
        .map(|(&k, &v)| (k as u64, v as u64))
        .collect();
    assert_eq!(tree_contents, oracle_contents, "final tree state diverges");
}

#[test]
fn single_key_hammering_is_linearizable() {
    // 2048 requests all on one key: the worst case for key conflicts and
    // the best case for combining.
    let mut tree = EireneTree::new(&pairs(256), EireneOptions::test_small());
    let mut oracle = SequentialOracle::load(&pairs32(256));
    let ops: Vec<(u32, OpKind)> = (0..2048u32)
        .map(|i| {
            let op = match i % 5 {
                0 => OpKind::Upsert(i),
                1 => OpKind::Delete,
                _ => OpKind::Query,
            };
            (128, op)
        })
        .collect();
    let batch = Batch::from_ops(ops);
    check_batch_against_oracle(&mut tree, &mut oracle, &batch);
}

#[test]
fn multi_batch_history_stays_linearizable() {
    let spec = WorkloadSpec {
        tree_size: 1 << 11,
        batch_size: 2048,
        mix: Mix {
            upsert: 0.25,
            delete: 0.1,
            range: 0.05,
            range_len: 4,
        },
        distribution: Distribution::Uniform,
        seed: 99,
    };
    let init = spec.initial_pairs();
    let p64: Vec<(u64, u64)> = init.iter().map(|&(k, v)| (k as u64, v as u64)).collect();
    let mut tree = EireneTree::new(&p64, EireneOptions::test_small());
    let mut oracle = SequentialOracle::load(&init);
    let mut gen = WorkloadGen::new(spec);
    for _ in 0..4 {
        let batch = gen.next_batch();
        check_batch_against_oracle(&mut tree, &mut oracle, &batch);
    }
}

#[test]
fn zipfian_contention_is_linearizable() {
    // Heavy skew concentrates many requests on few keys — the regime
    // where baselines conflict most and combining matters most.
    let spec = WorkloadSpec {
        tree_size: 1 << 10,
        batch_size: 4096,
        mix: Mix {
            upsert: 0.3,
            delete: 0.05,
            range: 0.0,
            range_len: 4,
        },
        distribution: Distribution::Zipfian { theta: 0.99 },
        seed: 5,
    };
    let init = spec.initial_pairs();
    let p64: Vec<(u64, u64)> = init.iter().map(|&(k, v)| (k as u64, v as u64)).collect();
    let mut tree = EireneTree::new(&p64, EireneOptions::test_small());
    let mut oracle = SequentialOracle::load(&init);
    let mut gen = WorkloadGen::new(spec);
    let batch = gen.next_batch();
    check_batch_against_oracle(&mut tree, &mut oracle, &batch);
}

#[test]
fn range_queries_interleaved_with_updates_are_linearizable() {
    let mut tree = EireneTree::new(&pairs(512), EireneOptions::test_small());
    let mut oracle = SequentialOracle::load(&pairs32(512));
    // Dense interleaving of ranges and updates over a small key window.
    let mut reqs = Vec::new();
    for i in 0..600u64 {
        let k = 100 + (i % 40) as u32;
        let op = match i % 4 {
            0 => OpKind::Upsert(i as u32),
            1 => OpKind::Range { len: 8 },
            2 => OpKind::Delete,
            _ => OpKind::Query,
        };
        reqs.push(Request { key: k, op, ts: i });
    }
    let batch = Batch::new(reqs);
    check_batch_against_oracle(&mut tree, &mut oracle, &batch);
}

#[test]
fn responses_are_deterministic_across_runs() {
    // Scheduling is nondeterministic; linearizable results must not be.
    let spec = WorkloadSpec {
        tree_size: 1 << 10,
        batch_size: 4096,
        mix: Mix {
            upsert: 0.2,
            delete: 0.05,
            range: 0.02,
            range_len: 4,
        },
        distribution: Distribution::Uniform,
        seed: 123,
    };
    let p64: Vec<(u64, u64)> = spec
        .initial_pairs()
        .iter()
        .map(|&(k, v)| (k as u64, v as u64))
        .collect();
    let batch = WorkloadGen::new(spec).next_batch();
    let r1 = EireneTree::new(&p64, EireneOptions::test_small())
        .run_batch(&batch)
        .responses;
    let r2 = EireneTree::new(&p64, EireneOptions::test_small())
        .run_batch(&batch)
        .responses;
    assert_eq!(r1, r2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random batches over a small key domain (maximal conflict density)
    /// must match the oracle response-for-response and state-for-state.
    #[test]
    fn prop_random_batches_match_oracle(
        ops in proptest::collection::vec(
            (1u32..64, 0u8..10, any::<u32>()),
            1..400,
        )
    ) {
        let init = pairs32(16); // keys 2..=32
        let p64: Vec<(u64, u64)> = init.iter().map(|&(k, v)| (k as u64, v as u64)).collect();
        let mut tree = EireneTree::new(&p64, EireneOptions::test_small());
        let mut oracle = SequentialOracle::load(&init);
        let reqs: Vec<Request> = ops
            .iter()
            .enumerate()
            .map(|(ts, &(key, sel, val))| {
                let op = match sel {
                    0..=2 => OpKind::Upsert(val),
                    3 => OpKind::Delete,
                    4 => OpKind::Range { len: 1 + (val % 8) },
                    _ => OpKind::Query,
                };
                Request { key, op, ts: ts as u64 }
            })
            .collect();
        let batch = Batch::new(reqs);
        let got = tree.run_batch(&batch).responses;
        let want = oracle.run_batch(&batch);
        prop_assert_eq!(&got, &want);
        validate(tree.device().mem(), tree.handle()).map_err(|e| {
            TestCaseError::fail(format!("invariant violation: {e}"))
        })?;
    }

    /// Permuting the *positions* of requests while keeping their
    /// timestamps must not change any response: only logical time matters.
    #[test]
    fn prop_results_depend_on_timestamps_not_positions(
        seed in 0u64..1000,
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let init = pairs32(64);
        let p64: Vec<(u64, u64)> = init.iter().map(|&(k, v)| (k as u64, v as u64)).collect();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut reqs: Vec<Request> = (0..200u64)
            .map(|ts| {
                let key = 2 * (1 + (ts as u32 * 7 + seed as u32) % 64);
                let op = match ts % 3 {
                    0 => OpKind::Upsert(ts as u32),
                    1 => OpKind::Query,
                    _ => OpKind::Delete,
                };
                Request { key, op, ts }
            })
            .collect();
        let mut t1 = EireneTree::new(&p64, EireneOptions::test_small());
        let batch1 = Batch::new(reqs.clone());
        let mut r1 = t1.run_batch(&batch1).responses;

        reqs.shuffle(&mut rng);
        let mut t2 = EireneTree::new(&p64, EireneOptions::test_small());
        let batch2 = Batch::new(reqs.clone());
        let r2 = t2.run_batch(&batch2).responses;

        // Align by timestamp before comparing.
        let mut order1: Vec<usize> = (0..batch1.len()).collect();
        order1.sort_by_key(|&i| batch1.requests[i].ts);
        let mut order2: Vec<usize> = (0..batch2.len()).collect();
        order2.sort_by_key(|&i| batch2.requests[i].ts);
        let by_ts1: Vec<&Response> = order1.iter().map(|&i| &r1[i]).collect();
        let by_ts2: Vec<&Response> = order2.iter().map(|&i| &r2[i]).collect();
        prop_assert_eq!(by_ts1, by_ts2);
        r1.clear();
    }
}

#[test]
fn equal_timestamp_range_before_update_sees_old_value() {
    // Range query and upsert on a covered key share a raw timestamp; the
    // range comes first in the batch, so the oracle's stable sort runs it
    // first and it must observe the OLD value. Regression: the resolve
    // pass used a raw `ts <` comparison, which always resolved the
    // equal-ts artificial query after the point request and handed the
    // range the new value.
    let init = pairs(8); // keys 2..=16, key 10 -> value 11
    let mut tree = EireneTree::new(&init, EireneOptions::test_small());
    let mut oracle = SequentialOracle::load(&pairs32(8));
    let batch = Batch::new(vec![
        Request::range(8, 5, 7),    // covers key 10, ts 7, batch pos 0
        Request::upsert(10, 99, 7), // same ts, batch pos 1
    ]);
    check_batch_against_oracle(&mut tree, &mut oracle, &batch);
    let got = {
        let mut t = EireneTree::new(&init, EireneOptions::test_small());
        t.run_batch(&batch).responses
    };
    match &got[0] {
        Response::Range(slots) => {
            assert_eq!(
                slots[2],
                Some(11),
                "range at equal ts but earlier batch position must see the old value"
            );
        }
        other => panic!("expected a range response, got {other:?}"),
    }
}

#[test]
fn equal_timestamp_update_before_range_sees_new_value() {
    // Mirror case: the upsert is earlier in the batch, so the equal-ts
    // range must observe the NEW value.
    let init = pairs(8);
    let mut tree = EireneTree::new(&init, EireneOptions::test_small());
    let mut oracle = SequentialOracle::load(&pairs32(8));
    let batch = Batch::new(vec![
        Request::upsert(10, 99, 7), // batch pos 0
        Request::range(8, 5, 7),    // same ts, batch pos 1
    ]);
    check_batch_against_oracle(&mut tree, &mut oracle, &batch);
    let got = {
        let mut t = EireneTree::new(&init, EireneOptions::test_small());
        t.run_batch(&batch).responses
    };
    match &got[1] {
        Response::Range(slots) => {
            assert_eq!(
                slots[2],
                Some(99),
                "range at equal ts but later batch position must see the new value"
            );
        }
        other => panic!("expected a range response, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Sharded serving layer: the linearizability claim must survive shard
// routing, epoch pipelining, and cross-shard range splitting/merging.
// ---------------------------------------------------------------------

/// Four shards with boundaries at 100/200/300 — small enough that the
/// test keys exercise every shard and every boundary.
fn test_map() -> ShardMap {
    ShardMap::from_starts(vec![0, 100, 200, 300]).expect("valid shard starts")
}

fn serve_config(device: DeviceConfig) -> ServeConfig {
    ServeConfig {
        map: test_map(),
        device,
        sizing: EpochSizing::Fixed(64), // force multi-epoch histories
        queue_depth: 1 << 12,
        policy: AdmitPolicy::Block,
        linger: Duration::ZERO,
        hold_gate: true,
        headroom_nodes: 1 << 12,
        ..ServeConfig::default()
    }
}

/// A mixed request stream dense around the shard boundaries: upserts and
/// deletes *on* the boundary keys interleaved with range queries whose
/// windows straddle one or two boundaries.
fn boundary_stream(n: u64) -> Vec<Request> {
    (0..n)
        .map(|i| {
            let b = [100u32, 200, 300][(i % 3) as usize];
            match i % 7 {
                0 => Request::upsert(b, i as u32, i),
                1 => Request::delete(b, i),
                2 => Request::upsert(b - 1, i as u32, i),
                3 => Request::range(b - 6, 12, i), // straddles one boundary
                4 => Request::range(95, 120, i),   // straddles 100 and 200
                5 => Request::query(b + 1, i),
                _ => Request::query(b, i),
            }
        })
        .collect()
}

/// Submits `reqs` in order through one client (gate held, so submission
/// order is admission order), then checks every ticket and the merged
/// final contents against a flat sequential oracle.
fn check_service_against_oracle(
    device: DeviceConfig,
    replay: Option<Vec<eirene::sim::ScheduleLog>>,
) {
    let init = pairs(150); // keys 2..=300: every shard starts non-empty
    let reqs = boundary_stream(280);
    let mut cfg = serve_config(device);
    cfg.replay = replay;
    let svc = Service::new(&init, cfg);
    let client = svc.client();
    let tickets: Vec<Ticket> = reqs.iter().map(|r| client.submit(r.key, r.op)).collect();
    svc.release();
    let report = svc.shutdown();

    let mut oracle = SequentialOracle::load(&pairs32(150));
    let want = oracle.run_batch(&Batch::new(reqs.clone()));
    for (i, (ticket, want)) in tickets.iter().zip(&want).enumerate() {
        assert_eq!(
            ticket.wait(),
            Outcome::Done(want.clone()),
            "response {i} diverges for {:?}",
            reqs[i]
        );
    }
    let oracle_contents: Vec<(u64, u64)> = oracle
        .contents()
        .iter()
        .map(|(&k, &v)| (k as u64, v as u64))
        .collect();
    assert_eq!(report.contents(), oracle_contents, "final state diverges");
    report.assert_consistent();
}

#[test]
fn sharded_service_is_linearizable_across_boundaries_os_sched() {
    check_service_against_oracle(DeviceConfig::test_small(), None);
}

#[test]
fn sharded_service_is_linearizable_across_boundaries_det_sched() {
    check_service_against_oracle(
        DeviceConfig::test_small().with_deterministic_sched(0xD5EED),
        None,
    );
}

#[test]
fn deterministic_serving_capture_replay_round_trips() {
    // First run: capture per-shard warp schedules and all responses.
    let init = pairs(150);
    let reqs = boundary_stream(280);
    let device = DeviceConfig::test_small().with_deterministic_sched(0xCAFE);
    let run = |replay: Option<Vec<eirene::sim::ScheduleLog>>| {
        let mut cfg = serve_config(device.clone());
        cfg.replay = replay;
        let svc = Service::new(&init, cfg);
        let client = svc.client();
        let tickets: Vec<Ticket> = reqs.iter().map(|r| client.submit(r.key, r.op)).collect();
        svc.release();
        let report = svc.shutdown();
        let outcomes: Vec<Outcome> = tickets.iter().map(|t| t.wait()).collect();
        let schedules: Vec<eirene::sim::ScheduleLog> =
            report.shards.iter().map(|s| s.schedule.clone()).collect();
        (outcomes, schedules, report)
    };
    let (out1, sched1, report1) = run(None);
    report1.assert_consistent();
    assert!(
        sched1.iter().any(|s| !s.launches.is_empty()),
        "deterministic devices must capture non-empty schedules"
    );
    // Second run replays those schedules: identical responses AND the
    // re-captured logs must match the originals bit-for-bit.
    let (out2, sched2, report2) = run(Some(sched1.clone()));
    report2.assert_consistent();
    assert_eq!(out1, out2, "replayed responses diverge");
    assert_eq!(sched1, sched2, "replayed schedules diverge");
}

#[test]
fn concurrent_clients_preserve_session_order() {
    // Four client threads write disjoint key stripes (one owned key per
    // shard each) and immediately read their own writes. Timestamps are
    // assigned in global submission order, so each query follows its
    // thread's latest upsert in logical time and — with no other writer on
    // the key — must observe it. Cross-shard ranges ride along to keep the
    // splitter/merger in the concurrent mix. No gate: the epoch pipeline
    // runs live under real thread interleaving.
    const THREADS: u32 = 4;
    const OPS: u32 = 48;
    let init = pairs(150);
    let cfg = ServeConfig {
        hold_gate: false,
        linger: Duration::from_micros(50),
        ..serve_config(DeviceConfig::test_small())
    };
    let svc = Service::new(&init, cfg);
    let mut expected: std::collections::BTreeMap<u64, u64> = init.iter().copied().collect();
    // Thread t owns key s*100 + 8t + 1 on each shard s: odd keys, absent
    // from the even initial pairs, disjoint across threads.
    for t in 0..THREADS {
        for s in 0..4u32 {
            let key = s * 100 + 8 * t + 1;
            let last = (0..OPS).filter(|i| i % 4 == s).max().unwrap();
            expected.insert(key as u64, (t * 1000 + last) as u64);
        }
    }
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let client = svc.client();
            scope.spawn(move || {
                let mut reads = Vec::new();
                for i in 0..OPS {
                    let s = i % 4;
                    let key = s * 100 + 8 * t + 1;
                    let val = t * 1000 + i;
                    client.submit(key, OpKind::Upsert(val));
                    reads.push((key, val, client.submit(key, OpKind::Query)));
                    if i % 8 == 0 {
                        // Straddles the 100 and 200 boundaries.
                        let range = client.submit(95, OpKind::Range { len: 110 });
                        match range.wait() {
                            Outcome::Done(Response::Range(slots)) => {
                                assert_eq!(slots.len(), 110)
                            }
                            other => panic!("range failed: {other:?}"),
                        }
                    }
                }
                for (key, val, ticket) in reads {
                    assert_eq!(
                        ticket.wait(),
                        Outcome::Done(Response::Value(Some(val))),
                        "thread {t} lost its own write to key {key}"
                    );
                }
            });
        }
    });
    let report = svc.shutdown();
    report.assert_consistent();
    let contents: Vec<(u64, u64)> = expected.into_iter().collect();
    assert_eq!(report.contents(), contents, "final state diverges");
}

#[test]
fn lock_free_multi_client_stress_matches_timestamp_order_replay() {
    // Eight threads race mixed single and batched submissions through the
    // lock-free front door with the epoch pipeline running live. The
    // service linearizes at admission timestamps, so replaying the whole
    // concurrent history through the flat oracle in timestamp order must
    // reproduce every ticket's response and the final contents, and the
    // report accounting must balance with nothing shed or timed out.
    const THREADS: u64 = 8;
    const OPS: usize = 160; // per thread
    let init = pairs(150);
    let cfg = ServeConfig {
        hold_gate: false,
        linger: Duration::from_micros(20),
        ..serve_config(DeviceConfig::test_small())
    };
    let svc = Service::new(&init, cfg);
    let mut per_thread: Vec<Vec<(u32, OpKind, Ticket)>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let client = svc.client();
                scope.spawn(move || {
                    // Per-thread deterministic LCG stream.
                    let mut state = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t + 1);
                    let mut next = move || {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        state >> 33
                    };
                    let ops: Vec<(u32, OpKind)> = (0..OPS)
                        .map(|_| {
                            let r = next();
                            let key = 1 + (r % 400) as u32;
                            let op = match r % 10 {
                                0..=3 => OpKind::Upsert((r >> 10) as u32),
                                4 => OpKind::Delete,
                                // Long enough to straddle shard boundaries.
                                5 => OpKind::Range {
                                    len: 1 + ((r >> 7) % 40) as u32,
                                },
                                _ => OpKind::Query,
                            };
                            (key, op)
                        })
                        .collect();
                    // Mix of single submissions and submit_many chunks.
                    let mut out: Vec<(u32, OpKind, Ticket)> = Vec::with_capacity(OPS);
                    let mut i = 0;
                    while i < ops.len() {
                        let take = (1 + next() % 9) as usize;
                        let take = take.min(ops.len() - i);
                        if take == 1 {
                            let (key, op) = ops[i];
                            out.push((key, op, client.submit(key, op)));
                        } else {
                            let slice = &ops[i..i + take];
                            for (&(key, op), ticket) in slice.iter().zip(client.submit_many(slice))
                            {
                                out.push((key, op, ticket));
                            }
                        }
                        i += take;
                    }
                    out
                })
            })
            .collect();
        per_thread.extend(handles.into_iter().map(|h| h.join().unwrap()));
    });
    let report = svc.shutdown();
    assert_eq!(report.shed(), 0, "generous queues must not shed");
    assert_eq!(report.timed_out(), 0, "no deadlines were set");
    report.assert_consistent();

    // Replay the concurrent history in admission-timestamp order.
    let mut ordered: Vec<(u64, u32, OpKind, Ticket)> = per_thread
        .into_iter()
        .flatten()
        .map(|(key, op, ticket)| {
            let ts = ticket.timestamp().expect("every op draws a timestamp");
            (ts, key, op, ticket)
        })
        .collect();
    ordered.sort_by_key(|e| e.0);
    let mut oracle = SequentialOracle::load(&pairs32(150));
    let want = oracle.run_batch(&Batch::new(
        ordered
            .iter()
            .map(|&(ts, key, op, _)| Request { key, op, ts })
            .collect(),
    ));
    for ((ts, key, op, ticket), want) in ordered.iter().zip(want) {
        assert_eq!(
            ticket.wait(),
            Outcome::Done(want),
            "ts {ts}: {op:?} on key {key} diverges from the timestamp-order replay"
        );
    }
    let oracle_contents: Vec<(u64, u64)> = oracle
        .contents()
        .iter()
        .map(|(&k, &v)| (k as u64, v as u64))
        .collect();
    assert_eq!(report.contents(), oracle_contents, "final state diverges");
}

#[test]
fn equal_timestamp_delete_vs_range_ties_break_by_batch_position() {
    // Same tie-break with a delete as the state op, both orders.
    let init = pairs(8);
    let run = |reqs: Vec<Request>| {
        let mut tree = EireneTree::new(&init, EireneOptions::test_small());
        let mut oracle = SequentialOracle::load(&pairs32(8));
        let batch = Batch::new(reqs);
        check_batch_against_oracle(&mut tree, &mut oracle, &batch);
    };
    run(vec![Request::range(8, 5, 3), Request::delete(10, 3)]);
    run(vec![Request::delete(10, 3), Request::range(8, 5, 3)]);
}
