//! Differential tests across every concurrent tree in the workspace.
//!
//! The baselines are *not* linearizable (same-key races resolve in lock or
//! commit order), but on key-disjoint batches every correct tree must
//! produce identical, oracle-equal results — and after any batch every
//! synchronized tree must still satisfy the structural invariants.

use eirene::baselines::common::{BatchRun, ConcurrentTree};
use eirene::baselines::{LockTree, StmTree};
use eirene::btree::refops;
use eirene::btree::validate::validate;
use eirene::core::{EireneOptions, EireneTree};
use eirene::sim::DeviceConfig;
use eirene::workloads::{Batch, OpKind, Oracle, Request, SequentialOracle};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn pairs(n: u64) -> Vec<(u64, u64)> {
    (1..=n).map(|i| (2 * i, 2 * i + 1)).collect()
}

fn all_trees(p: &[(u64, u64)]) -> Vec<Box<dyn ConcurrentTree>> {
    vec![
        Box::new(StmTree::new(p, DeviceConfig::test_small(), 1 << 13)),
        Box::new(LockTree::new(p, DeviceConfig::test_small(), 1 << 13)),
        Box::new(EireneTree::new(p, EireneOptions::test_small())),
    ]
}

/// A batch where every request's *footprint* is disjoint from every other
/// request's, in random order. A `Range { len }` request reads `len`
/// consecutive keys, so its whole window is reserved: if another request
/// wrote inside the window, the concurrent trees (which only order requests
/// on the *same* key) could legitimately disagree with the sequential
/// oracle.
fn disjoint_batch(seed: u64, n: usize, domain: u32) -> Batch {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut keys: Vec<u32> = (1..=domain).collect();
    keys.shuffle(&mut rng);
    let mut used = std::collections::HashSet::new();
    let mut reqs: Vec<Request> = Vec::with_capacity(n);
    for &key in &keys {
        if reqs.len() == n {
            break;
        }
        if used.contains(&key) {
            continue;
        }
        let mut op = match rng.gen_range(0..6) {
            0 => OpKind::Upsert(rng.gen()),
            1 => OpKind::Delete,
            2 => OpKind::Range { len: 4 },
            _ => OpKind::Query,
        };
        if let OpKind::Range { len } = op {
            if (1..len).any(|d| used.contains(&(key + d))) {
                // Window collides with an already-claimed key: fall back to
                // a point read rather than disturbing determinism.
                op = OpKind::Query;
            } else {
                used.extend((1..len).map(|d| key + d));
            }
        }
        used.insert(key);
        let ts = reqs.len() as u64;
        reqs.push(Request { key, op, ts });
    }
    assert_eq!(reqs.len(), n, "domain too small for a disjoint batch");
    Batch::new(reqs)
}

#[test]
fn disjoint_key_batches_agree_across_all_trees() {
    let p = pairs(2000);
    let init: Vec<(u32, u32)> = p.iter().map(|&(k, v)| (k as u32, v as u32)).collect();
    let batch = disjoint_batch(1, 1024, 4000);
    let want = SequentialOracle::load(&init).run_batch(&batch);
    for mut tree in all_trees(&p) {
        let BatchRun { responses, .. } = tree.run_batch(&batch);
        for i in 0..batch.len() {
            assert_eq!(
                responses[i],
                want[i],
                "{}: response {i} for {:?}",
                tree.name(),
                batch.requests[i]
            );
        }
        validate(tree.device().mem(), tree.handle())
            .unwrap_or_else(|e| panic!("{}: {e}", tree.name()));
    }
}

#[test]
fn final_state_agrees_on_disjoint_updates() {
    let p = pairs(500);
    // All upserts on distinct keys: final contents must be identical in
    // every tree regardless of execution order.
    let batch = Batch::new(
        (0..800u32)
            .map(|i| Request::upsert(i * 5 + 1, i, i as u64))
            .collect(),
    );
    let mut snapshots = Vec::new();
    for mut tree in all_trees(&p) {
        tree.run_batch(&batch);
        validate(tree.device().mem(), tree.handle())
            .unwrap_or_else(|e| panic!("{}: {e}", tree.name()));
        snapshots.push((
            tree.name(),
            refops::contents(tree.device().mem(), tree.handle()),
        ));
    }
    for w in snapshots.windows(2) {
        assert_eq!(w[0].1, w[1].1, "{} vs {}", w[0].0, w[1].0);
    }
}

#[test]
fn contended_batches_keep_every_tree_structurally_valid() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
    let p = pairs(300);
    for mut tree in all_trees(&p) {
        for round in 0..3 {
            let reqs: Vec<Request> = (0..1500u64)
                .map(|ts| {
                    let key = rng.gen_range(1..=600u32);
                    let op = match rng.gen_range(0..10) {
                        0..=4 => OpKind::Upsert(rng.gen()),
                        5 => OpKind::Delete,
                        _ => OpKind::Query,
                    };
                    Request { key, op, ts }
                })
                .collect();
            tree.run_batch(&Batch::new(reqs));
            validate(tree.device().mem(), tree.handle())
                .unwrap_or_else(|e| panic!("{} round {round}: {e}", tree.name()));
        }
    }
}

#[test]
fn every_tree_reports_execution_statistics() {
    let p = pairs(1000);
    let batch = disjoint_batch(3, 512, 2000);
    for mut tree in all_trees(&p) {
        let run = tree.run_batch(&batch);
        assert!(run.stats.totals.mem_insts > 0, "{}", tree.name());
        assert!(run.stats.totals.control_insts > 0, "{}", tree.name());
        assert!(run.stats.makespan_cycles > 0.0, "{}", tree.name());
        assert!(run.stats.totals.requests > 0, "{}", tree.name());
        let tput = run.throughput(tree.device(), batch.len());
        assert!(tput > 0.0, "{}", tree.name());
    }
}

#[test]
fn eirene_issues_fewer_tree_operations_than_baselines_on_hot_keys() {
    // 4096 requests over 8 keys: baselines traverse 4096 times, Eirene 8.
    let p = pairs(1000);
    let batch = Batch::new(
        (0..4096u64)
            .map(|ts| Request::upsert(((ts % 8) * 2 + 2) as u32, ts as u32, ts))
            .collect(),
    );
    let mut eirene = EireneTree::new(&p, EireneOptions::test_small());
    let er = eirene.run_batch(&batch);
    assert_eq!(er.stats.totals.requests, 8, "one issued request per key");
    let mut lock = LockTree::new(&p, DeviceConfig::test_small(), 1 << 12);
    let lr = lock.run_batch(&batch);
    assert_eq!(lr.stats.totals.requests, 4096);
    assert!(
        er.stats.totals.mem_insts * 10 < lr.stats.totals.mem_insts,
        "combining must slash memory traffic on hot keys: {} vs {}",
        er.stats.totals.mem_insts,
        lr.stats.totals.mem_insts
    );
}

#[test]
fn concurrent_descending_inserts_below_minimum_stay_valid() {
    // Regression for the clamp-case fence undercut: a stream of inserts
    // below the tree's minimum key repeatedly splits leftmost-spine
    // nodes whose keys sit below their parent fences.
    let p: Vec<(u64, u64)> = vec![(1_000_000, 0)];
    let batch = Batch::new(
        (0..1200u32)
            .map(|i| Request::upsert(2000 - i, i, i as u64))
            .collect(),
    );
    for mut tree in all_trees(&p) {
        tree.run_batch(&batch);
        validate(tree.device().mem(), tree.handle())
            .unwrap_or_else(|e| panic!("{}: {e}", tree.name()));
        for i in 0..1200u32 {
            assert_eq!(
                refops::get(tree.device().mem(), tree.handle(), (2000 - i) as u64),
                Some(i as u64),
                "{}: key {}",
                tree.name(),
                2000 - i
            );
        }
    }
}
