//! Seed corpus for the differential fuzzer (`crates/check`): fixed cases
//! that previously surfaced bugs or probe known-delicate territory —
//! boundary keys `0` and `u32::MAX`, duplicate-timestamp batches, empty
//! batches, and range queries spanning leaf boundaries — each checked
//! across the five fuzzed trees (Eirene, its two ablations, and the STM
//! and Lock GB-trees).
//!
//! The baselines only serialize racing requests on the *same* key, so
//! cases with key conflicts run only on the linearizable Eirene variants;
//! conflict-free cases run on all five.

use eirene::check::{check_case, run_serve_case, run_serve_fuzz, FuzzTree};
use eirene::check::{ServeFuzzOptions, ServeFuzzOutcome};
use eirene::serve::ShardMap;
use eirene::sim::DeviceConfig;
use eirene::workloads::Request;

fn pairs(n: u64) -> Vec<(u64, u64)> {
    (1..=n).map(|k| (k, k + 1)).collect()
}

fn check_all(pairs: &[(u64, u64)], reqs: &[Request]) {
    for sel in FuzzTree::ALL {
        check_case(sel, pairs, &DeviceConfig::test_small(), 1 << 12, reqs)
            .unwrap_or_else(|v| panic!("{}: {v}", sel.label()));
    }
}

fn check_linearizable(pairs: &[(u64, u64)], reqs: &[Request]) {
    for sel in FuzzTree::ALL.into_iter().filter(|t| t.linearizable()) {
        check_case(sel, pairs, &DeviceConfig::test_small(), 1 << 12, reqs)
            .unwrap_or_else(|v| panic!("{}: {v}", sel.label()));
    }
}

#[test]
fn boundary_key_zero_full_lifecycle() {
    // Key 0 sits on the leftmost leaf's low fence. Disjoint footprints, so
    // all five trees must agree.
    let p = pairs(64);
    check_all(
        &p,
        &[
            Request::query(0, 0),
            Request::upsert(1, 100, 1),
            Request::range(2, 4, 2),
        ],
    );
    // Insert, read, delete, re-read key 0 — key conflicts, Eirene only.
    check_linearizable(
        &p,
        &[
            Request::query(0, 0),
            Request::upsert(0, 42, 1),
            Request::query(0, 2),
            Request::delete(0, 3),
            Request::query(0, 4),
        ],
    );
}

#[test]
fn boundary_key_u32_max_full_lifecycle() {
    let p = pairs(64);
    // Disjoint: one op per key at the top of the key space.
    check_all(
        &p,
        &[
            Request::upsert(u32::MAX, 7, 0),
            Request::query(u32::MAX - 1, 1),
            Request::query(63, 2),
        ],
    );
    // Conflicting lifecycle on u32::MAX, plus a range whose window
    // saturates at the top of the domain (oracle uses checked_add; the
    // trees compute bounds in u64 — both must agree slot-for-slot).
    check_linearizable(
        &p,
        &[
            Request::upsert(u32::MAX, 1, 0),
            Request::range(u32::MAX - 3, 8, 1),
            Request::query(u32::MAX, 2),
            Request::delete(u32::MAX, 3),
            Request::range(u32::MAX - 3, 8, 4),
        ],
    );
}

#[test]
fn duplicate_timestamp_batches() {
    let p = pairs(64);
    // Every request shares ts 5: resolution must follow batch position,
    // matching the oracle's stable sort. Key conflicts -> Eirene only.
    check_linearizable(
        &p,
        &[
            Request::query(10, 5),
            Request::upsert(10, 1, 5),
            Request::query(10, 5),
            Request::upsert(10, 2, 5),
            Request::delete(10, 5),
            Request::query(10, 5),
        ],
    );
    // Equal-ts artificial-query tie-break, both orders (regression for
    // the raw-ts comparison bug in resolve_run).
    check_linearizable(&p, &[Request::range(8, 5, 7), Request::upsert(10, 99, 7)]);
    check_linearizable(&p, &[Request::upsert(10, 99, 7), Request::range(8, 5, 7)]);
}

#[test]
fn empty_batch_is_a_no_op_everywhere() {
    check_all(&pairs(64), &[]);
}

#[test]
fn range_queries_spanning_leaf_boundaries() {
    // FANOUT is 16, so a bulk-loaded 512-key tree packs multiple leaves;
    // a 64-wide window crosses several leaf boundaries and forces
    // horizontal traversal. Disjoint from all updates -> all five trees.
    let p = pairs(512);
    check_all(
        &p,
        &[
            Request::range(100, 64, 0),
            Request::upsert(300, 1, 1),
            Request::range(400, 64, 2),
        ],
    );
    // The same spanning window with updates *inside* it (artificial-query
    // patching across leaf boundaries) -> Eirene variants.
    check_linearizable(
        &p,
        &[
            Request::range(100, 64, 0),
            Request::upsert(120, 1, 1),
            Request::delete(140, 2),
            Request::range(100, 64, 3),
            Request::upsert(160, 2, 4),
            Request::range(130, 64, 5),
        ],
    );
}

#[test]
fn delete_heavy_churn_on_a_small_key_set() {
    let p = pairs(32);
    let mut reqs = Vec::new();
    for round in 0u64..8 {
        for key in [4u32, 8, 12] {
            let base = round * 9 + (key / 4 - 1) as u64 * 3;
            reqs.push(Request::delete(key, base));
            reqs.push(Request::upsert(key, (round * 10) as u32, base + 1));
            reqs.push(Request::query(key, base + 2));
        }
    }
    check_linearizable(&p, &reqs);
}

// ---------------------------------------------------------------------
// Serving-layer seed corpus: the same delicate territory pushed through
// the sharded service (shard routing, epoch splitting, range merging).
// ---------------------------------------------------------------------

fn check_serve(map: ShardMap, pairs: &[(u64, u64)], reqs: &[Request]) {
    let opts = ServeFuzzOptions {
        epoch_limit: 8, // small epochs: every corpus case spans several
        ..ServeFuzzOptions::default()
    };
    // Once under OS scheduling, once under a deterministic warp schedule.
    run_serve_case(&opts, &map, pairs, 0, reqs).unwrap_or_else(|v| panic!("os-sched: {v}"));
    let det = ServeFuzzOptions {
        deterministic: true,
        ..opts
    };
    run_serve_case(&det, &map, pairs, 0x5EED, reqs).unwrap_or_else(|v| panic!("det-sched: {v}"));
}

#[test]
fn serve_boundary_keys_route_and_linearize() {
    // Ops on the extreme keys 0 and u32::MAX land on the outermost
    // shards; a saturating range window near the top must still merge.
    let map = ShardMap::from_starts(vec![0, 64, 128, u32::MAX - 8]).expect("valid shard starts");
    check_serve(
        map,
        &pairs(48),
        &[
            Request::query(0, 0),
            Request::upsert(0, 42, 1),
            Request::upsert(u32::MAX, 7, 2),
            Request::range(u32::MAX - 10, 16, 3), // straddles the top boundary, saturates
            Request::query(0, 4),
            Request::delete(u32::MAX, 5),
            Request::range(u32::MAX - 10, 16, 6),
        ],
    );
}

#[test]
fn serve_ranges_straddling_every_boundary() {
    // One window covering all four shards plus per-boundary straddlers,
    // interleaved with updates on the boundary keys themselves.
    let map = ShardMap::from_starts(vec![0, 16, 32, 48]).expect("valid shard starts");
    check_serve(
        map,
        &pairs(64),
        &[
            Request::range(1, 60, 0), // spans all four shards
            Request::upsert(16, 100, 1),
            Request::range(14, 5, 2),
            Request::delete(32, 3),
            Request::range(30, 5, 4),
            Request::upsert(48, 200, 5),
            Request::range(46, 5, 6),
            Request::range(1, 60, 7),
        ],
    );
}

#[test]
fn serve_duplicate_and_conflicting_keys_across_epochs() {
    // A single hot key hammered across several tiny epochs: per-shard
    // queue order must linearize identically to the flat oracle.
    let map = ShardMap::from_starts(vec![0, 24]).expect("valid shard starts");
    let mut reqs = Vec::new();
    for i in 0u64..40 {
        let op = match i % 4 {
            0 => Request::upsert(24, i as u32, i), // boundary key itself
            1 => Request::query(24, i),
            2 => Request::delete(24, i),
            _ => Request::range(20, 9, i),
        };
        reqs.push(op);
    }
    check_serve(map, &pairs(48), &reqs);
}

#[test]
fn serve_fuzz_repro_seeds_stay_green() {
    // Pinned repro seeds (the exact replay path a failure report prints):
    // each runs every adversarial profile once through a 4-shard service.
    for seed in [0x5E4E5E_u64, 0xB0A7, 0xD15C0] {
        let opts = ServeFuzzOptions {
            repro: Some(seed),
            ..ServeFuzzOptions::default()
        };
        match run_serve_fuzz(&opts) {
            ServeFuzzOutcome::Passed { .. } => {}
            ServeFuzzOutcome::Failed(f) => panic!("repro seed {seed:#x} diverged: {f}"),
        }
    }
}
