//! Observability invariants across every concurrent tree: per-phase
//! counter rows sum to the kernel totals exactly (±0), the bounded
//! latency histogram counts every completed request, and per-warp event
//! tracing is captured only when requested.

use eirene::baselines::common::ConcurrentTree;
use eirene::baselines::{LockTree, NoCcTree, StmTree};
use eirene::core::{EireneOptions, EireneTree};
use eirene::sim::{DeviceConfig, Phase, TraceEventKind};
use eirene::workloads::{Batch, OpKind, Request};
use rand::{Rng, SeedableRng};

fn pairs(n: u64) -> Vec<(u64, u64)> {
    (1..=n).map(|i| (2 * i, 2 * i + 1)).collect()
}

fn all_trees(p: &[(u64, u64)], cfg: DeviceConfig) -> Vec<Box<dyn ConcurrentTree>> {
    vec![
        Box::new(NoCcTree::new(p, cfg.clone())),
        Box::new(StmTree::new(p, cfg.clone(), 1 << 13)),
        Box::new(LockTree::new(p, cfg.clone(), 1 << 13)),
        Box::new(EireneTree::new(
            p,
            EireneOptions {
                device: cfg.clone(),
                locality: false,
                ..EireneOptions::test_small()
            },
        )),
        Box::new(EireneTree::new(
            p,
            EireneOptions {
                device: cfg,
                ..EireneOptions::test_small()
            },
        )),
    ]
}

/// Mixed batch with genuine contention: hot keys, ranges, deletes.
fn mixed_batch(seed: u64, n: usize, domain: u32) -> Batch {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let reqs: Vec<Request> = (0..n as u64)
        .map(|ts| {
            let key = rng.gen_range(1..=domain);
            let op = match rng.gen_range(0..10) {
                0..=2 => OpKind::Upsert(rng.gen()),
                3 => OpKind::Delete,
                4 => OpKind::Range { len: 4 },
                _ => OpKind::Query,
            };
            Request { key, op, ts }
        })
        .collect();
    Batch::new(reqs)
}

#[test]
fn phase_rows_sum_to_kernel_totals_for_every_tree() {
    let p = pairs(1000);
    let batch = mixed_batch(42, 1024, 2000);
    for mut tree in all_trees(&p, DeviceConfig::test_small()) {
        let run = tree.run_batch(&batch);
        let t = &run.stats.totals;
        let s = t.phase_sums();
        assert_eq!(s.mem_insts, t.mem_insts, "{}: mem_insts", tree.name());
        assert_eq!(s.mem_words, t.mem_words, "{}: mem_words", tree.name());
        assert_eq!(
            s.mem_transactions,
            t.mem_transactions,
            "{}: mem_transactions",
            tree.name()
        );
        assert_eq!(
            s.control_insts,
            t.control_insts,
            "{}: control_insts",
            tree.name()
        );
        assert_eq!(
            s.atomic_insts,
            t.atomic_insts,
            "{}: atomic_insts",
            tree.name()
        );
        assert_eq!(
            s.lock_conflicts,
            t.lock_conflicts,
            "{}: lock_conflicts",
            tree.name()
        );
        assert_eq!(s.stm_aborts, t.stm_aborts, "{}: stm_aborts", tree.name());
        assert_eq!(
            s.version_conflicts,
            t.version_conflicts,
            "{}: version_conflicts",
            tree.name()
        );
        assert_eq!(s.cycles, t.cycles, "{}: cycles", tree.name());
    }
}

#[test]
fn phase_attribution_reflects_each_design() {
    let p = pairs(1000);
    let batch = mixed_batch(7, 1024, 2000);
    for mut tree in all_trees(&p, DeviceConfig::test_small()) {
        let run = tree.run_batch(&batch);
        let ph = &run.stats.totals.phases;
        // Every tree walks the tree: traversal work must be attributed.
        assert!(
            ph.row(Phase::VerticalTraversal).cycles > 0,
            "{}: no vertical-traversal cycles",
            tree.name()
        );
        assert!(
            ph.row(Phase::LeafOp).cycles > 0,
            "{}: no leaf-op cycles",
            tree.name()
        );
        match tree.name() {
            "STM GB-tree" => {
                assert!(ph.row(Phase::StmAccess).mem_insts > 0, "orec traffic");
                assert!(ph.row(Phase::StmCommit).cycles > 0, "commit work");
            }
            "Lock GB-tree" => {
                assert!(ph.row(Phase::LockAcquire).cycles > 0, "latch work");
            }
            "Eirene" => {
                assert!(ph.row(Phase::Combine).cycles > 0, "combining cost");
                assert!(ph.row(Phase::ResultCalc).cycles > 0, "result calculation");
            }
            _ => {}
        }
    }
}

#[test]
fn latency_histogram_counts_every_request() {
    let p = pairs(1000);
    let batch = mixed_batch(11, 512, 2000);
    for mut tree in all_trees(&p, DeviceConfig::test_small()) {
        let run = tree.run_batch(&batch);
        let t = &run.stats.totals;
        assert_eq!(
            t.latency.count(),
            t.requests,
            "{}: every processed request must be recorded",
            tree.name()
        );
        assert!(t.latency.mean() > 0.0, "{}", tree.name());
        assert!(t.latency.max() >= t.latency.min(), "{}", tree.name());
        // Quantiles are clamped into the exact [min, max] envelope.
        for q in [0.5, 0.9, 0.99, 0.999] {
            let v = t.latency.quantile(q);
            assert!(
                v >= t.latency.min() && v <= t.latency.max(),
                "{} q{q}",
                tree.name()
            );
        }
    }
}

#[test]
fn tracing_is_off_by_default_and_captures_when_enabled() {
    let p = pairs(500);
    let batch = mixed_batch(13, 768, 600);
    for mut tree in all_trees(&p, DeviceConfig::test_small()) {
        let run = tree.run_batch(&batch);
        assert!(
            run.stats.totals.events.is_empty(),
            "{}: trace off by default",
            tree.name()
        );
    }
    let traced = DeviceConfig {
        trace: true,
        ..DeviceConfig::test_small()
    };
    let mut lock = LockTree::new(&p, traced.clone(), 1 << 13);
    let run = lock.run_batch(&batch);
    assert!(
        !run.stats.totals.events.is_empty(),
        "contended lock run must emit events"
    );
    assert!(run
        .stats
        .totals
        .events
        .iter()
        .any(|e| e.kind == TraceEventKind::LockConflict));

    // Hot keys: Eirene's combiner folds duplicates into runs and reports
    // them as combine hits.
    let hot = Batch::new(
        (0..2048u64)
            .map(|ts| Request::upsert(((ts % 4) * 2 + 2) as u32, ts as u32, ts))
            .collect(),
    );
    let mut eirene = EireneTree::new(
        &p,
        EireneOptions {
            device: traced,
            ..EireneOptions::test_small()
        },
    );
    let run = eirene.run_batch(&hot);
    assert!(
        run.stats
            .totals
            .events
            .iter()
            .any(|e| e.kind == TraceEventKind::CombineHit),
        "hot-key batch must report combine hits"
    );
}
